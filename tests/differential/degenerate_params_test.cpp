// Degenerate query parameters, differentially against the oracle:
// tau = 0, t < 2*tau, t before the first / after the last event, the
// empty stream, and the single-event stream — across every structure
// (PBE-1, PBE-2, CM-PBE grids, dyadic engine). Where the structures
// are exact by construction (no compression pressure, no collisions)
// the assertion is equality with ExactBurstStore, not a band.

#include <gtest/gtest.h>

#include <vector>

#include "core/burst_engine.h"
#include "core/exact_store.h"
#include "differential/diff_harness.h"
#include "test_util.h"

namespace bursthist {
namespace {

// Large-capacity cells: nothing below ever triggers compression, so
// PBE estimates are exact staircases and any mismatch with the oracle
// is a real bug, not an approximation.
Pbe1Options ExactCell1() {
  Pbe1Options o;
  o.buffer_points = 4096;
  o.budget_points = 4096;
  return o;
}

Pbe2Options ExactCell2() {
  Pbe2Options o;
  o.gamma = 0.0;
  return o;
}

struct Structures {
  ExactBurstStore oracle;
  std::vector<Pbe1> pbes1;
  std::vector<Pbe2> pbes2;
  CmPbe<Pbe1> grid1;
  CmPbe<Pbe2> grid2;
  BurstEngine<Pbe1> engine;

  explicit Structures(EventId universe)
      : oracle(universe),
        grid1(GridOptions(universe), ExactCell1()),
        grid2(GridOptions(universe), ExactCell2()),
        engine(EngineOptions(universe)) {
    for (EventId e = 0; e < universe; ++e) {
      pbes1.emplace_back(ExactCell1());
      pbes2.emplace_back(ExactCell2());
    }
  }

  // Identity-mapped, collision-free grid: exact by construction.
  static CmPbeOptions GridOptions(EventId universe) {
    CmPbeOptions o;
    o.depth = 1;
    o.width = universe;
    o.identity_hash = true;
    return o;
  }

  static BurstEngineOptions<Pbe1> EngineOptions(EventId universe) {
    BurstEngineOptions<Pbe1> o;
    o.universe_size = universe;
    o.grid = GridOptions(universe);
    o.cell = ExactCell1();
    return o;
  }

  void Ingest(const EventStream& stream) {
    ASSERT_TRUE(oracle.AppendStream(stream).ok());
    for (const auto& r : stream.records()) {
      pbes1[r.id].Append(r.time);
      pbes2[r.id].Append(r.time);
      grid1.Append(r.id, r.time);
      grid2.Append(r.id, r.time);
      ASSERT_TRUE(engine.Append(r.id, r.time).ok());
    }
    for (auto& p : pbes1) p.Finalize();
    for (auto& p : pbes2) p.Finalize();
    grid1.Finalize();
    grid2.Finalize();
    engine.Finalize();
  }

  // Every structure must report exactly the oracle's burstiness.
  void ExpectPointMatchesOracle(EventId e, Timestamp t, Timestamp tau) {
    const double exact =
        static_cast<double>(oracle.BurstinessAt(e, t, tau));
    EXPECT_NEAR(pbes1[e].EstimateBurstiness(t, tau), exact,
                test::kIdentityTol)
        << "PBE-1 e=" << e << " t=" << t << " tau=" << tau;
    EXPECT_NEAR(pbes2[e].EstimateBurstiness(t, tau), exact, test::kAccumTol)
        << "PBE-2 e=" << e << " t=" << t << " tau=" << tau;
    EXPECT_NEAR(grid1.EstimateBurstiness(e, t, tau), exact,
                test::kIdentityTol)
        << "CM-PBE-1 e=" << e << " t=" << t << " tau=" << tau;
    EXPECT_NEAR(grid2.EstimateBurstiness(e, t, tau), exact, test::kAccumTol)
        << "CM-PBE-2 e=" << e << " t=" << t << " tau=" << tau;
    EXPECT_NEAR(engine.PointQuery(e, t, tau), exact, test::kIdentityTol)
        << "engine e=" << e << " t=" << t << " tau=" << tau;
  }
};

constexpr EventId kUniverse = 5;

EventStream SmallStream() {
  // Two active events, gaps, duplicate timestamps; ids 3 and 4 stay
  // silent so "event never seen" is also covered.
  std::vector<EventRecord> records = {
      {0, 10}, {1, 10}, {0, 11}, {0, 11}, {2, 15},
      {0, 18}, {1, 18}, {0, 18}, {2, 30}, {0, 31},
  };
  return EventStream(std::move(records));
}

TEST(DegenerateParams, TauZeroIsIdenticallyZero) {
  Structures s(kUniverse);
  s.Ingest(SmallStream());
  // b(t) with tau = 0 collapses to F - 2F + F = 0 for every structure
  // and for the oracle alike.
  for (EventId e = 0; e < kUniverse; ++e) {
    for (Timestamp t : {-5, 0, 10, 11, 18, 31, 100}) {
      EXPECT_EQ(s.oracle.BurstinessAt(e, t, 0), 0) << "oracle";
      s.ExpectPointMatchesOracle(e, t, 0);
    }
  }
}

TEST(DegenerateParams, TimesOutsideHistoryAndShortWindows) {
  Structures s(kUniverse);
  s.Ingest(SmallStream());
  const Timestamp first = 10, last = 31;
  for (EventId e = 0; e < kUniverse; ++e) {
    for (Timestamp tau : {1, 3, 11, 50}) {
      // Before the first event (including t < 2*tau, where the t-tau
      // and t-2*tau terms reach before time zero), at the boundary,
      // beyond the last event.
      for (Timestamp t : {first - 20, first - 1, first, first + 1,
                          static_cast<Timestamp>(2 * tau - 1), last,
                          last + tau, last + 2 * tau + 5}) {
        s.ExpectPointMatchesOracle(e, t, tau);
      }
      // Far before history everything is exactly zero.
      EXPECT_EQ(s.oracle.BurstinessAt(e, first - 20, tau), 0);
      EXPECT_EQ(s.pbes1[e].EstimateCumulative(first - 1), 0.0);
      EXPECT_EQ(s.grid1.EstimateCumulative(e, first - 1), 0.0);
    }
  }
  // BURSTY EVENT far outside history: nobody is bursty.
  EXPECT_TRUE(s.oracle.BurstyEvents(first - 20, 1.0, 3).empty());
  EXPECT_TRUE(s.engine.BurstyEventQuery(first - 20, 1.0, 3).empty());
  EXPECT_TRUE(s.engine.BurstyEventQuery(last + 100, 1.0, 3).empty());
}

TEST(DegenerateParams, EmptyStream) {
  Structures s(kUniverse);
  s.Ingest(EventStream());  // nothing
  for (EventId e = 0; e < kUniverse; ++e) {
    for (Timestamp t : {-3, 0, 7}) {
      for (Timestamp tau : {0, 1, 9}) {
        s.ExpectPointMatchesOracle(e, t, tau);
      }
      EXPECT_EQ(s.oracle.CumulativeFrequency(e, t), 0u);
      EXPECT_EQ(s.engine.CumulativeQuery(e, t), 0.0);
    }
    EXPECT_TRUE(s.oracle.BurstyTimes(e, 1.0, 4).empty());
    EXPECT_TRUE(s.engine.BurstyTimeQuery(e, 1.0, 4).empty());
  }
  EXPECT_TRUE(s.engine.BurstyEventQuery(0, 1.0, 4).empty());
  // TOP-K on an empty engine still returns k leaves, all identically
  // zero (there is no "no data" sentinel in the paper's query model).
  for (const auto& [e, b] : s.engine.TopKBurstyEvents(0, 3, 4)) {
    EXPECT_EQ(b, 0.0) << "event " << e;
  }
}

TEST(DegenerateParams, SingleEventStream) {
  Structures s(kUniverse);
  EventStream one;
  one.Append(2, 42);
  s.Ingest(one);
  for (EventId e = 0; e < kUniverse; ++e) {
    for (Timestamp t : {41 - 50, 41, 42, 43, 42 + 7, 400}) {
      for (Timestamp tau : {1, 7, 100}) {
        s.ExpectPointMatchesOracle(e, t, tau);
      }
    }
  }
  // The lone occurrence is bursty right at t=42 for theta <= 1.
  EXPECT_EQ(s.oracle.BurstinessAt(2, 42, 7), 1);
  const auto bursty = s.engine.BurstyEventQuery(42, 1.0, 7);
  EXPECT_EQ(bursty, std::vector<EventId>{2});
  EXPECT_EQ(s.engine.BurstyEventQuery(42, 1.5, 7), std::vector<EventId>{});
  // BURSTY TIME around the single spike matches the oracle exactly
  // (both sides are exact staircases).
  EXPECT_EQ(s.engine.BurstyTimeQuery(2, 1.0, 7), s.oracle.BurstyTimes(2, 1.0, 7));
}

// Degenerate STREAMS through the full differential harness: the
// harness itself must behave on empty-ish inputs (n = 0 would be
// vacuous; n = 1 and tiny n exercise the QueryPlan fallbacks).
TEST(DegenerateParams, HarnessHandlesTinyStreams) {
  const test::DiffConfig config = test::DiffConfig::Small();
  for (size_t n : {1u, 2u, 3u, 8u}) {
    for (auto family : {test::StreamFamily::kUniform,
                        test::StreamFamily::kDuplicates,
                        test::StreamFamily::kStaircase}) {
      test::StreamSpec spec;
      spec.family = family;
      spec.universe = 4;
      spec.n = n;
      spec.seed = test::CaseSeed(7700 + n);
      const auto violations = test::RunStructureDifferential(spec, config);
      for (const auto& v : violations) ADD_FAILURE() << v;
    }
  }
}

// Reversed FREQ ranges: f(e, [t1, t2]) with t1 > t2 is DEFINED as 0 —
// the engine never swaps the endpoints — and the definition holds at
// the engine layer for finalized AND live engines alike, for seen and
// unseen events, and however extreme the reversal.
TEST(DegenerateParams, ReversedFrequencyRangeIsZero) {
  Structures s(kUniverse);
  s.Ingest(SmallStream());
  // A forward range with the same endpoints is nonzero — proof the
  // zero below comes from the t1 > t2 rule, not from empty data.
  ASSERT_GT(s.engine.FrequencyQuery(0, 10, 18), 0.0);
  for (EventId e = 0; e < kUniverse; ++e) {
    EXPECT_EQ(s.engine.FrequencyQuery(e, 18, 10), 0.0) << "e=" << e;
    EXPECT_EQ(s.engine.FrequencyQuery(e, 11, 10), 0.0) << "adjacent";
    EXPECT_EQ(s.engine.FrequencyQuery(e, 1000, -1000), 0.0) << "extreme";
    EXPECT_EQ(s.engine.FrequencyQuery(e, 31, 10), 0.0)
        << "both endpoints inside history";
  }

  // Same rule on a live engine, including one whose records are all
  // still in the re-order buffer.
  const EventStream stream = SmallStream();
  BurstEngine<Pbe1> live(Structures::EngineOptions(kUniverse));
  for (const auto& r : stream.records()) {
    ASSERT_TRUE(live.Append(r.id, r.time).ok());
  }
  ASSERT_GT(live.FrequencyQuery(0, 10, 18), 0.0);
  EXPECT_EQ(live.FrequencyQuery(0, 18, 10), 0.0);

  auto buffered_options = Structures::EngineOptions(kUniverse);
  buffered_options.max_lateness = 1000;
  BurstEngine<Pbe1> buffered(buffered_options);
  for (const auto& r : stream.records()) {
    ASSERT_TRUE(buffered.Append(r.id, r.time).ok());
  }
  ASSERT_GT(buffered.BufferedCount(), 0u);
  ASSERT_GT(buffered.FrequencyQuery(0, 10, 18), 0.0);
  EXPECT_EQ(buffered.FrequencyQuery(0, 18, 10), 0.0);
}

}  // namespace
}  // namespace bursthist
