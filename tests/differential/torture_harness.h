// Crashpoint torture harness: REAL process-kill recovery testing.
//
// The harness shared by tests/crash_torture_test.cpp (ctest entry)
// and tools/crash_torture (standalone driver). One torture cycle is:
//
//   1. fork() a child;
//   2. the child arms a crashpoint schedule (site, action, hit count
//      — see fault/crashpoint.h), opens a DurableBurstEngine on the
//      scratch directory, and ingests a seeded diff-harness stream,
//      acknowledging each accepted append by appending one byte to an
//      ack file (a raw O_APPEND write(2), so the ack itself survives
//      the kill);
//   3. the scheduled SIGKILL lands mid-durability-protocol — no
//      destructors, no flushes: the death fsync ordering and rename
//      atomicity exist for;
//   4. the parent recovers the directory and verifies the recovery
//      CONTRACT, then resumes the workload to completion and verifies
//      full convergence.
//
// The contract, precisely:
//
//   acked <= K <= n      K = recovered TotalCount, acked = ack-file
//                        size. Acked records were written before the
//                        ack byte, and a completed write(2) survives
//                        SIGKILL — so acked is a LOWER bound; the kill
//                        can land between a record's write and its
//                        ack, so K may legitimately exceed acked.
//   byte identity        the recovered engine serializes to exactly
//                        the bytes of a reference engine fed the
//                        first K workload records. BurstEngine<Pbe1>
//                        state is a deterministic function of its
//                        append sequence, so this is the strongest
//                        form of query-identical (the idiom of
//                        fault_injection_test).
//   convergence          reopening the directory and appending the
//                        remaining workload must succeed and end
//                        byte-identical to the full-workload
//                        reference — recovery left no hidden damage.
//
// Sweep enumeration never trusts a hand-kept site list: a RECON pass
// first runs the workload in-process under trace mode and asks the
// scheduler which sites were actually reached, with hit counts. The
// sweep then kills at every (site, hit-variant, seed) — a site that
// silently stops being exercised shrinks the printed matrix, which
// the CI job asserts against a minimum.

#ifndef BURSTHIST_TESTS_DIFFERENTIAL_TORTURE_HARNESS_H_
#define BURSTHIST_TESTS_DIFFERENTIAL_TORTURE_HARNESS_H_

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "core/burst_engine.h"
#include "differential/diff_harness.h"
#include "fault/crashpoint.h"
#include "recovery/durable_engine.h"
#include "util/env.h"
#include "util/random.h"
#include "util/serialize.h"
#include "util/status.h"

namespace bursthist {
namespace test {
namespace torture {

// ---------------------------------------------------------------------------
// Workload
// ---------------------------------------------------------------------------

/// One torture workload: a seeded diff-harness stream plus the
/// child's checkpoint/batch choreography. Everything is derived from
/// `seed`, so a cycle is reproducible from (seed, schedule) alone.
struct TortureSpec {
  uint64_t seed = 1;
  size_t n = 320;
  /// Checkpoint after this many appends (0 = never). Drives the
  /// checkpoint.* and snapshot.* crash windows.
  size_t checkpoint_every = 90;
  /// One AppendBatch of `batch_len` records starting at this index
  /// (batch_len = 0 disables). Drives the wal.batch.* window; the
  /// batch path is byte-identical to per-record appends (see
  /// batch_identity_test), so the reference always applies records
  /// one by one.
  size_t batch_at = 150;
  size_t batch_len = 24;
};

inline BurstEngineOptions<Pbe1> TortureEngineOptions() {
  BurstEngineOptions<Pbe1> o;
  o.universe_size = 8;
  o.grid.depth = 1;
  o.grid.width = 8;
  o.cell.buffer_points = 16;
  o.cell.budget_points = 4;
  return o;
}

/// Tiny segments so the workload crosses many rotations — every
/// rotation is a crash window.
inline DurabilityOptions TortureDurability() {
  DurabilityOptions d;
  d.wal_segment_bytes = 4 << 10;
  return d;
}

/// The stream, time-sorted so any prefix is ingestible and the parent
/// can always resume from index K. Family varies with the seed.
inline std::vector<EventRecord> TortureWorkload(const TortureSpec& spec) {
  StreamSpec s;
  // kOutOfOrder excluded: the sort below erases its point anyway.
  s.family = static_cast<StreamFamily>(spec.seed % 4);
  s.universe = 8;
  s.n = spec.n;
  s.seed = spec.seed;
  auto arrivals = GenerateArrivals(s);
  std::stable_sort(arrivals.begin(), arrivals.end(),
                   [](const EventRecord& a, const EventRecord& b) {
                     return a.time < b.time;
                   });
  return arrivals;
}

inline std::vector<uint8_t> EngineBytes(const BurstEngine<Pbe1>& engine) {
  BinaryWriter w;
  engine.Serialize(&w);
  return w.TakeBytes();
}

/// Serialized reference engine fed the first `k` workload records.
inline std::vector<uint8_t> ReferenceBytes(
    const std::vector<EventRecord>& workload, size_t k) {
  BurstEngine<Pbe1> ref(TortureEngineOptions());
  for (size_t i = 0; i < k; ++i) {
    if (!ref.Append(workload[i].id, workload[i].time).ok()) return {};
  }
  return EngineBytes(ref);
}

// ---------------------------------------------------------------------------
// Child side
// ---------------------------------------------------------------------------

/// Child exit codes (SIGKILL deaths have no exit code — the parent
/// reads WIFSIGNALED instead).
inline constexpr int kChildCompleted = 0;
inline constexpr int kChildInjectedError = 42;
inline constexpr int kChildSetupFailure = 43;

/// Acknowledges `count` accepted appends: one raw byte each, written
/// before the next append begins.
inline void AckAppends(int fd, size_t count) {
  static const char kDots[64] = {};
  while (count > 0) {
    const size_t chunk = std::min(count, sizeof(kDots));
    if (::write(fd, kDots, chunk) < 0) ::_exit(kChildSetupFailure);
    count -= chunk;
  }
}

/// The child's workload: open (recover) the directory, resume the
/// seeded stream from wherever recovery left it, checkpointing and
/// batching per the spec. Returns the exit code; a kill-mode
/// crashpoint never returns. `ack_fd` < 0 disables acking (the
/// in-process recon pass).
inline int RunTortureWorkload(Env* env, const std::string& dir, int ack_fd,
                              const TortureSpec& spec) {
  const std::vector<EventRecord> workload = TortureWorkload(spec);
  auto durable_or = DurableBurstEngine<Pbe1>::Open(
      env, dir, TortureEngineOptions(), TortureDurability());
  // An injected error during open/recovery ends the "process" the
  // same way a real flaky disk would.
  if (!durable_or.ok()) return kChildInjectedError;
  auto durable = std::move(durable_or).value();

  size_t i = static_cast<size_t>(durable->engine().TotalCount());
  if (i > workload.size()) return kChildSetupFailure;
  size_t next_checkpoint =
      spec.checkpoint_every == 0 ? workload.size() + 1
                                 : i + spec.checkpoint_every;
  while (i < workload.size()) {
    if (i >= next_checkpoint) {
      if (!durable->Checkpoint().ok()) return kChildInjectedError;
      next_checkpoint += spec.checkpoint_every;
    }
    if (spec.batch_len > 0 && i == spec.batch_at &&
        i + spec.batch_len <= workload.size()) {
      std::vector<WeightedRecord> batch;
      batch.reserve(spec.batch_len);
      for (size_t j = i; j < i + spec.batch_len; ++j) {
        batch.push_back(WeightedRecord{workload[j].id, workload[j].time, 1});
      }
      size_t applied = 0;
      const Status st = durable->AppendBatch(batch, &applied);
      if (ack_fd >= 0) AckAppends(ack_fd, applied);
      i += applied;
      if (!st.ok()) return kChildInjectedError;
      if (applied != spec.batch_len) return kChildSetupFailure;
    } else {
      if (!durable->Append(workload[i].id, workload[i].time).ok()) {
        return kChildInjectedError;
      }
      if (ack_fd >= 0) AckAppends(ack_fd, 1);
      ++i;
    }
  }
  if (!durable->Sync().ok()) return kChildInjectedError;
  return kChildCompleted;
}

// ---------------------------------------------------------------------------
// Recon: enumerate reachable crashpoints
// ---------------------------------------------------------------------------

/// Runs the workload in-process under trace mode on a scratch
/// directory and returns every crashpoint reached with its total hit
/// count — the sweep matrix, derived from reality instead of a
/// hand-kept list. The directory must be empty; it is left dirty for
/// the caller to clean.
inline std::vector<std::pair<std::string, uint64_t>> ReconSites(
    Env* env, const std::string& dir, const TortureSpec& spec) {
  auto& sched = fault::FaultScheduler::Global();
  sched.Disarm();
  sched.EnableTrace(true);
  (void)RunTortureWorkload(env, dir, -1, spec);
  auto sites = sched.ReachedSites();
  sched.Disarm();
  return sites;
}

// ---------------------------------------------------------------------------
// Parent side
// ---------------------------------------------------------------------------

struct ChildOutcome {
  bool killed = false;  ///< died by SIGKILL (the scheduled crash)
  int exit_code = -1;   ///< valid when !killed
  size_t acked = 0;     ///< ack bytes that reached the file
};

/// Forks and runs the torture workload in a child under `schedule`.
/// The caller must not hold live engine objects or extra threads —
/// fork() only clones the calling thread.
inline ChildOutcome ForkTortureChild(const std::string& dir,
                                     const std::string& ack_path,
                                     const std::string& schedule,
                                     const TortureSpec& spec) {
  ::unlink(ack_path.c_str());
  std::fflush(stdout);
  std::fflush(stderr);
  const pid_t pid = ::fork();
  if (pid == 0) {
    auto& sched = fault::FaultScheduler::Global();
    sched.Disarm();
    if (!schedule.empty() && !sched.LoadSchedule(schedule).ok()) {
      ::_exit(kChildSetupFailure);
    }
    const int ack_fd =
        ::open(ack_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (ack_fd < 0) ::_exit(kChildSetupFailure);
    ::_exit(RunTortureWorkload(Env::Default(), dir, ack_fd, spec));
  }
  ChildOutcome out;
  if (pid < 0) return out;
  int status = 0;
  ::waitpid(pid, &status, 0);
  out.killed = WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL;
  out.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  struct stat st{};
  if (::stat(ack_path.c_str(), &st) == 0) {
    out.acked = static_cast<size_t>(st.st_size);
  }
  return out;
}

struct Verdict {
  bool ok = true;
  uint64_t recovered_k = 0;
  std::string detail;

  static Verdict Fail(std::string why) { return Verdict{false, 0, std::move(why)}; }
};

/// The post-crash recovery contract: acked <= K <= n and byte
/// identity with the reference prefix of K records.
inline Verdict VerifyRecovered(Env* env, const std::string& dir,
                               const std::vector<EventRecord>& workload,
                               size_t acked) {
  auto rec = RecoverBurstEngine<Pbe1>(env, dir, TortureEngineOptions());
  if (!rec.ok()) {
    return Verdict::Fail("recovery failed: " + rec.status().ToString());
  }
  Verdict v;
  v.recovered_k = rec.value().TotalCount();
  if (v.recovered_k > workload.size()) {
    return Verdict::Fail("recovered K=" + std::to_string(v.recovered_k) +
                         " exceeds workload n=" +
                         std::to_string(workload.size()));
  }
  if (v.recovered_k < acked) {
    return Verdict::Fail("lost acknowledged records: K=" +
                         std::to_string(v.recovered_k) + " < acked=" +
                         std::to_string(acked));
  }
  const auto got = EngineBytes(rec.value());
  const auto want =
      ReferenceBytes(workload, static_cast<size_t>(v.recovered_k));
  if (want.empty() || got != want) {
    return Verdict::Fail("recovered state not byte-identical to reference "
                         "prefix K=" +
                         std::to_string(v.recovered_k));
  }
  return v;
}

/// Convergence: reopen the directory, append the remaining workload,
/// checkpoint, and require byte identity with the full-workload
/// reference — the crash left no hidden damage behind.
inline Verdict FinishAndVerify(Env* env, const std::string& dir,
                               const std::vector<EventRecord>& workload) {
  auto durable_or = DurableBurstEngine<Pbe1>::Open(
      env, dir, TortureEngineOptions(), TortureDurability());
  if (!durable_or.ok()) {
    return Verdict::Fail("reopen failed: " + durable_or.status().ToString());
  }
  auto durable = std::move(durable_or).value();
  size_t i = static_cast<size_t>(durable->engine().TotalCount());
  if (i > workload.size()) {
    return Verdict::Fail("reopened K exceeds workload");
  }
  for (; i < workload.size(); ++i) {
    const Status st = durable->Append(workload[i].id, workload[i].time);
    if (!st.ok()) {
      return Verdict::Fail("resume append " + std::to_string(i) +
                           " failed: " + st.ToString());
    }
  }
  if (Status st = durable->Checkpoint(); !st.ok()) {
    return Verdict::Fail("final checkpoint failed: " + st.ToString());
  }
  Verdict v;
  v.recovered_k = durable->engine().TotalCount();
  const auto got = EngineBytes(durable->engine());
  const auto want = ReferenceBytes(workload, workload.size());
  if (want.empty() || got != want) {
    return Verdict::Fail("converged state not byte-identical to full "
                         "reference");
  }
  return v;
}

/// One full torture cycle against an empty directory: fork, crash,
/// recover + verify, resume + verify.
inline Verdict RunTortureCycle(Env* env, const std::string& dir,
                               const std::string& ack_path,
                               const std::string& schedule,
                               const TortureSpec& spec) {
  const auto workload = TortureWorkload(spec);
  const ChildOutcome child = ForkTortureChild(dir, ack_path, schedule, spec);
  if (!child.killed && child.exit_code != kChildCompleted &&
      child.exit_code != kChildInjectedError) {
    return Verdict::Fail("child failed outside the schedule: exit=" +
                         std::to_string(child.exit_code));
  }
  Verdict v = VerifyRecovered(env, dir, workload, child.acked);
  if (!v.ok) {
    v.detail += " [schedule=" + schedule +
                " seed=" + std::to_string(spec.seed) +
                " acked=" + std::to_string(child.acked) +
                (child.killed ? " killed" : " exit=" +
                                            std::to_string(child.exit_code)) +
                "]";
    return v;
  }
  Verdict conv = FinishAndVerify(env, dir, workload);
  if (!conv.ok) {
    conv.detail += " [schedule=" + schedule +
                   " seed=" + std::to_string(spec.seed) + "]";
  }
  return conv;
}

}  // namespace torture
}  // namespace test
}  // namespace bursthist

#endif  // BURSTHIST_TESTS_DIFFERENTIAL_TORTURE_HARNESS_H_
