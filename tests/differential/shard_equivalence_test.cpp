// Shard-equivalence differential suite: a ClusterEngine(N) must be
// indistinguishable from a single engine fed the same stream, up to
// the guarantees sharding actually makes.
//
// The load-bearing invariant is BYTE IDENTITY per shard: hash routing
// gives every event id one home shard, so shard i's engine state must
// serialize to exactly the bytes of a dedicated engine fed the routed
// subsequence — for ANY grid configuration, colliding or not. Every
// query claim follows from it:
//
//  * POINT / FREQ / BTIME route to the owning shard. With a
//    collision-free grid (identity hash, width >= universe) the
//    owning shard's cell for e sees exactly the appends the single
//    engine's cell saw, so answers are IDENTICAL — asserted to
//    kIdentityTol across >= 3 stream families.
//  * BURSTY EVENT / TOPK merge per-shard candidate sets. The dyadic
//    tree's interior nodes aggregate different id subsets per shard,
//    so pruning may recover recall the single engine's cancellation
//    lost (and vice versa) — the paper's own caveat. What must hold:
//    the cluster answer equals the merge of the dedicated reference
//    engines' answers exactly, and every disagreement with the single
//    engine is confined to ids whose leaf estimate clears theta on
//    both sides (pure prune-recall differences, never false
//    positives).
//  * Crash recovery: after a real SIGKILL at a scheduled crashpoint
//    inside the durability protocol, every recovered shard must be
//    byte-identical to a reference prefix of its routed subsequence,
//    jointly covering all acknowledged records — the single-engine
//    torture contract, per shard.

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/burst_engine.h"
#include "differential/diff_harness.h"
#include "differential/torture_harness.h"
#include "fault/crashpoint.h"
#include "recovery/durable_engine.h"
#include "shard/cluster_engine.h"
#include "shard/shard_router.h"
#include "test_util.h"
#include "util/env.h"
#include "util/serialize.h"

namespace bursthist {
namespace test {
namespace {

using shard::ClusterEngine;
using shard::ClusterOptions;
using shard::ShardDirName;
using shard::ShardRouter;

// Collision-free grid: identity hash with width == universe gives
// every event its own cell, so per-event estimates depend only on
// that event's own records — the configuration under which cluster
// and single answers must agree exactly.
BurstEngineOptions<Pbe1> ExactOptions(EventId universe,
                                      Timestamp lateness = 0) {
  BurstEngineOptions<Pbe1> o;
  o.universe_size = universe;
  o.grid.depth = 1;
  o.grid.width = universe;
  o.grid.identity_hash = true;
  o.cell.buffer_points = 32;
  o.cell.budget_points = 8;
  o.max_lateness = lateness;
  return o;
}

// A deliberately colliding grid, for the per-shard byte-identity
// check (which must hold regardless of collisions).
BurstEngineOptions<Pbe1> CollidingOptions(EventId universe) {
  BurstEngineOptions<Pbe1> o;
  o.universe_size = universe;
  o.grid.depth = 2;
  o.grid.width = universe / 4;
  o.cell.buffer_points = 32;
  o.cell.budget_points = 8;
  return o;
}

std::vector<uint8_t> EngineBytes(const BurstEngine<Pbe1>& engine) {
  BinaryWriter w;
  engine.FinalizedClone().Serialize(&w);
  return w.bytes();
}

// The routed subsequence of `records` homed on `shard`.
std::vector<EventRecord> RoutedSubsequence(
    const std::vector<EventRecord>& records, const ShardRouter& router,
    size_t shard) {
  std::vector<EventRecord> out;
  for (const auto& r : records) {
    if (router.ShardOf(r.id) == shard) out.push_back(r);
  }
  return out;
}

// Time-sorted arrivals for one family/seed (lateness 0 keeps the
// single/cluster validation rules identical record for record).
std::vector<EventRecord> SortedWorkload(StreamFamily family, EventId universe,
                                        size_t n, uint64_t seed) {
  StreamSpec spec{family, universe, n, seed, 0};
  auto arrivals = GenerateArrivals(spec);
  std::stable_sort(arrivals.begin(), arrivals.end(),
                   [](const EventRecord& a, const EventRecord& b) {
                     return a.time < b.time;
                   });
  return arrivals;
}

class ShardEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override { env_ = Env::Default(); }

  void TearDown() override {
    for (auto it = dirs_.rbegin(); it != dirs_.rend(); ++it) RemoveTree(*it);
  }

  std::string NewDir(const std::string& tag) {
    std::string dir = testing::TempDir() + "/bursthist_shardeq_" + tag + "_" +
                      std::to_string(static_cast<unsigned long long>(
                          ::getpid())) +
                      "_" + std::to_string(dirs_.size());
    RemoveTree(dir);
    EXPECT_TRUE(env_->CreateDirIfMissing(dir).ok());
    dirs_.push_back(dir);
    return dir;
  }

  void RemoveTree(const std::string& dir) {
    auto names = env_->ListDir(dir);
    if (names.ok()) {
      for (const auto& n : names.value()) {
        const std::string path = dir + "/" + n;
        auto nested = env_->ListDir(path);
        if (nested.ok()) {
          for (const auto& m : nested.value()) {
            (void)env_->DeleteFile(path + "/" + m);
          }
          ::rmdir(path.c_str());
        }
        (void)env_->DeleteFile(path);
      }
    }
    ::rmdir(dir.c_str());
  }

  // Opens a cluster and feeds it the workload through the batched
  // (worker-parallel) path, in uneven chunk sizes so sub-batch
  // boundaries move around.
  Result<std::unique_ptr<ClusterEngine<Pbe1>>> FeedCluster(
      const std::string& dir, const BurstEngineOptions<Pbe1>& opts,
      size_t shards, const std::vector<EventRecord>& workload) {
    ClusterOptions copts;
    copts.shards = shards;
    auto cluster = ClusterEngine<Pbe1>::Open(env_, dir, opts, copts);
    if (!cluster.ok()) return cluster.status();
    size_t i = 0;
    size_t chunk = 1;
    std::vector<WeightedRecord> batch;
    while (i < workload.size()) {
      const size_t n = std::min(chunk, workload.size() - i);
      batch.clear();
      for (size_t j = i; j < i + n; ++j) {
        batch.push_back(WeightedRecord{workload[j].id, workload[j].time, 1});
      }
      size_t applied = 0;
      BURSTHIST_RETURN_IF_ERROR(cluster.value()->AppendBatch(batch, &applied));
      if (applied != n) {
        return Status::Internal("batch applied " + std::to_string(applied) +
                                " of " + std::to_string(n));
      }
      i += n;
      chunk = chunk >= 96 ? 1 : chunk * 3 + 1;  // 1, 4, 13, 40, 121-capped
    }
    return cluster;
  }

  Env* env_ = nullptr;
  std::vector<std::string> dirs_;
};

constexpr StreamFamily kFamilies[] = {
    StreamFamily::kUniform, StreamFamily::kBursty, StreamFamily::kStaircase,
    StreamFamily::kDuplicates};

// ---------------------------------------------------------------------------
// Per-shard byte identity (any grid)
// ---------------------------------------------------------------------------

TEST_F(ShardEquivalenceTest, ShardsAreByteIdenticalToRoutedReferences) {
  constexpr EventId kUniverse = 16;
  constexpr size_t kShards = 3;
  size_t case_id = 0;
  for (StreamFamily family : kFamilies) {
    for (uint64_t seed : {1ull, 2ull, 3ull}) {
      const auto workload =
          SortedWorkload(family, kUniverse, 600, CaseSeed(seed));
      const auto opts = CollidingOptions(kUniverse);
      auto cluster = FeedCluster(NewDir("bytes" + std::to_string(case_id++)),
                                 opts, kShards, workload);
      ASSERT_TRUE(cluster.ok())
          << FamilyName(family) << " seed=" << seed << ": "
          << cluster.status().ToString();

      const ShardRouter& router = cluster.value()->router();
      for (size_t s = 0; s < kShards; ++s) {
        BurstEngine<Pbe1> reference(opts);
        for (const auto& r : RoutedSubsequence(workload, router, s)) {
          ASSERT_TRUE(reference.Append(r.id, r.time).ok());
        }
        EXPECT_EQ(EngineBytes(cluster.value()->shard(s)->engine()),
                  EngineBytes(reference))
            << FamilyName(family) << " seed=" << seed << " "
            << ShardDirName(s)
            << " not byte-identical to its routed reference";
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Routed query identity (collision-free grid)
// ---------------------------------------------------------------------------

TEST_F(ShardEquivalenceTest, RoutedQueriesMatchSingleEngineExactly) {
  constexpr EventId kUniverse = 16;
  constexpr size_t kShards = 3;
  size_t case_id = 0;
  for (StreamFamily family : kFamilies) {
    for (uint64_t seed : {4ull, 5ull}) {
      const auto workload =
          SortedWorkload(family, kUniverse, 600, CaseSeed(seed));
      const auto opts = ExactOptions(kUniverse);

      BurstEngine<Pbe1> single(opts);
      for (const auto& r : workload) {
        ASSERT_TRUE(single.Append(r.id, r.time).ok());
      }
      auto cluster = FeedCluster(NewDir("query" + std::to_string(case_id++)),
                                 opts, kShards, workload);
      ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
      auto snap = cluster.value()->AcquireSnapshot();

      EXPECT_EQ(snap->total_count(), single.TotalCount());
      EXPECT_EQ(snap->watermark(), single.Watermark());

      const Timestamp hi = single.Watermark();
      const std::vector<Timestamp> ts = {0, hi / 3, hi / 2, hi, hi + 5};
      const std::vector<Timestamp> taus = {1, 2, hi / 4 + 1};
      for (EventId e = 0; e < kUniverse; ++e) {
        for (Timestamp t : ts) {
          for (Timestamp tau : taus) {
            EXPECT_NEAR(snap->Point(e, t, tau).value,
                        single.PointQuery(e, t, tau), kIdentityTol)
                << FamilyName(family) << " seed=" << seed << " POINT e=" << e
                << " t=" << t << " tau=" << tau;
          }
          EXPECT_NEAR(snap->Frequency(e, 0, t).value,
                      single.FrequencyQuery(e, 0, t), kIdentityTol)
              << FamilyName(family) << " seed=" << seed << " FREQ e=" << e
              << " t=" << t;
        }
        // BURSTY TIME routes whole: the owning shard's cell is the
        // single engine's cell, so intervals match exactly.
        for (double theta : {1.0, 3.0}) {
          const auto got = snap->BurstyTime(e, theta, 2).value;
          const auto want = single.BurstyTimeQuery(e, theta, 2);
          EXPECT_EQ(got.size(), want.size())
              << FamilyName(family) << " seed=" << seed << " BTIME e=" << e;
          for (size_t i = 0; i < std::min(got.size(), want.size()); ++i) {
            EXPECT_EQ(got[i].begin, want[i].begin);
            EXPECT_EQ(got[i].end, want[i].end);
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Scatter-gather queries (collision-free grid)
// ---------------------------------------------------------------------------

TEST_F(ShardEquivalenceTest, ScatterGatherMergesAreExactAndBoundCompatible) {
  constexpr EventId kUniverse = 16;
  constexpr size_t kShards = 3;
  size_t case_id = 0;
  for (StreamFamily family : kFamilies) {
    for (uint64_t seed : {6ull, 7ull}) {
      const auto workload =
          SortedWorkload(family, kUniverse, 600, CaseSeed(seed));
      const auto opts = ExactOptions(kUniverse);

      BurstEngine<Pbe1> single(opts);
      for (const auto& r : workload) {
        ASSERT_TRUE(single.Append(r.id, r.time).ok());
      }
      auto cluster = FeedCluster(NewDir("gather" + std::to_string(case_id++)),
                                 opts, kShards, workload);
      ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
      auto snap = cluster.value()->AcquireSnapshot();
      const ShardRouter& router = cluster.value()->router();

      // Dedicated reference engines, one per shard (byte-identical to
      // the cluster's shards by the test above — rebuilt here so this
      // test stands alone).
      std::vector<BurstEngine<Pbe1>> refs;
      refs.reserve(kShards);
      for (size_t s = 0; s < kShards; ++s) {
        refs.emplace_back(opts);
        for (const auto& r : RoutedSubsequence(workload, router, s)) {
          ASSERT_TRUE(refs.back().Append(r.id, r.time).ok());
        }
      }

      const Timestamp hi = single.Watermark();
      for (Timestamp t : {hi / 2, hi}) {
        for (double theta : {0.5, 2.0, 5.0}) {
          const Timestamp tau = 2;
          const auto got = snap->BurstyEvent(t, theta, tau).value;

          // (a) The cluster answer IS the merge of the per-shard
          // reference answers — sharding adds nothing and loses
          // nothing beyond what each shard's own index reports.
          std::vector<EventId> want;
          for (auto& ref : refs) {
            const auto part = ref.BurstyEventQuery(t, theta, tau);
            want.insert(want.end(), part.begin(), part.end());
          }
          std::sort(want.begin(), want.end());
          EXPECT_EQ(got, want)
              << FamilyName(family) << " seed=" << seed << " BEVENT t=" << t
              << " theta=" << theta
              << " cluster answer != merged per-shard references";

          // (b) Bound compatibility with the single engine: any
          // disagreement must be a prune-recall difference — an id
          // whose leaf estimate clears theta (identical on both
          // sides) that one side's interior-node pruning dropped.
          // Neither side may report an id below theta.
          std::vector<EventId> leaf;
          for (EventId e = 0; e < kUniverse; ++e) {
            if (single.PointQuery(e, t, tau) >= theta - kIdentityTol) {
              leaf.push_back(e);
            }
          }
          const auto single_set = single.BurstyEventQuery(t, theta, tau);
          for (EventId e : got) {
            EXPECT_TRUE(std::binary_search(leaf.begin(), leaf.end(), e))
                << "cluster reported e=" << e << " below theta=" << theta;
          }
          for (EventId e : single_set) {
            EXPECT_TRUE(std::binary_search(leaf.begin(), leaf.end(), e))
                << "single reported e=" << e << " below theta=" << theta;
          }

          // TOPK: the cluster merge must equal the deterministic k-best
          // of the per-shard reference answers (value desc, id asc).
          const size_t k = 4;
          auto topk = snap->TopK(t, k, tau).value;
          std::vector<std::pair<EventId, double>> merged;
          for (auto& ref : refs) {
            const auto part = ref.TopKBurstyEvents(t, k, tau);
            merged.insert(merged.end(), part.begin(), part.end());
          }
          std::sort(merged.begin(), merged.end(),
                    [](const auto& a, const auto& b) {
                      if (a.second != b.second) return a.second > b.second;
                      return a.first < b.first;
                    });
          if (merged.size() > k) merged.resize(k);
          ASSERT_EQ(topk.size(), merged.size());
          for (size_t i = 0; i < topk.size(); ++i) {
            EXPECT_EQ(topk[i].first, merged[i].first)
                << FamilyName(family) << " seed=" << seed << " TOPK rank "
                << i;
            EXPECT_NEAR(topk[i].second, merged[i].second, kIdentityTol);
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Crash-recovery equivalence (real SIGKILL at crashpoints)
// ---------------------------------------------------------------------------

#ifndef BURSTHIST_NO_FAULT

constexpr size_t kTortureShards = 2;
constexpr size_t kTortureN = 240;
constexpr int kClusterChildCompleted = 0;
constexpr int kClusterChildFailure = 41;

BurstEngineOptions<Pbe1> TortureClusterOptions() {
  return ExactOptions(/*universe=*/8);
}

DurabilityOptions TortureClusterDurability() {
  DurabilityOptions d;
  d.wal_segment_bytes = 4 << 10;
  d.sync_every_append = true;  // every acked record must survive
  return d;
}

std::vector<EventRecord> ClusterTortureWorkload(uint64_t seed) {
  return SortedWorkload(static_cast<StreamFamily>(seed % 4), 8, kTortureN,
                        seed);
}

// Child body: open (recover) the cluster and append the workload
// record by record, acking each accepted append — the crashpoint
// schedule kills the process somewhere inside the durability
// protocol. Runs in a forked child, so only async-signal-safe-ish
// plumbing: no gtest, exit codes only.
int RunClusterWorkload(Env* env, const std::string& dir, int ack_fd,
                       uint64_t seed) {
  const auto workload = ClusterTortureWorkload(seed);
  ClusterOptions copts;
  copts.shards = kTortureShards;
  copts.parallel_ingest = false;  // appends stay on this thread
  auto cluster = ClusterEngine<Pbe1>::Open(env, dir, TortureClusterOptions(),
                                           copts, TortureClusterDurability());
  if (!cluster.ok()) return kClusterChildFailure;

  // Resume past whatever recovery already holds: per shard, the
  // applied records are a prefix of the routed subsequence.
  const ShardRouter& router = cluster.value()->router();
  std::vector<size_t> have(kTortureShards);
  std::vector<size_t> done(kTortureShards, 0);
  for (size_t s = 0; s < kTortureShards; ++s) {
    have[s] =
        static_cast<size_t>(cluster.value()->shard(s)->engine().TotalCount());
  }
  for (const auto& r : workload) {
    const size_t s = router.ShardOf(r.id);
    if (done[s] < have[s]) {
      ++done[s];
      continue;  // already durable from before the crash
    }
    // Cluster-level Append would refuse records behind the merged
    // watermark; per-shard resume is the documented recovery path.
    if (!cluster.value()->shard(s)->Append(r.id, r.time).ok()) {
      return kClusterChildFailure;
    }
    ++done[s];
    if (ack_fd >= 0) torture::AckAppends(ack_fd, 1);
  }
  if (!cluster.value()->Sync().ok()) return kClusterChildFailure;
  return kClusterChildCompleted;
}

// Forks the cluster workload under a crashpoint schedule.
torture::ChildOutcome ForkClusterChild(const std::string& dir,
                                       const std::string& ack_path,
                                       const std::string& schedule,
                                       uint64_t seed) {
  ::unlink(ack_path.c_str());
  std::fflush(stdout);
  std::fflush(stderr);
  const pid_t pid = ::fork();
  if (pid == 0) {
    auto& sched = fault::FaultScheduler::Global();
    sched.Disarm();
    if (!schedule.empty() && !sched.LoadSchedule(schedule).ok()) {
      ::_exit(kClusterChildFailure);
    }
    const int ack_fd =
        ::open(ack_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (ack_fd < 0) ::_exit(kClusterChildFailure);
    ::_exit(RunClusterWorkload(Env::Default(), dir, ack_fd, seed));
  }
  torture::ChildOutcome out;
  if (pid < 0) return out;
  int status = 0;
  ::waitpid(pid, &status, 0);
  out.killed = WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL;
  out.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  struct stat st{};
  if (::stat(ack_path.c_str(), &st) == 0) {
    out.acked = static_cast<size_t>(st.st_size);
  }
  return out;
}

TEST_F(ShardEquivalenceTest, RecoveryIsByteIdenticalPerShardAfterKills) {
  // Derive the kill matrix from a trace-mode recon of the REAL
  // cluster workload, never a hand-kept site list.
  const uint64_t recon_seed = 1;
  auto& sched = fault::FaultScheduler::Global();
  sched.Disarm();
  sched.EnableTrace(true);
  {
    const std::string recon_dir = NewDir("recon");
    const int rc = RunClusterWorkload(env_, recon_dir, -1, recon_seed);
    ASSERT_EQ(rc, kClusterChildCompleted);
  }
  auto sites = sched.ReachedSites();
  sched.Disarm();
  ASSERT_FALSE(sites.empty()) << "cluster workload reached no crashpoints";

  // Keep the fork matrix bounded: a handful of distinct sites, killed
  // early and mid-run.
  if (sites.size() > 5) sites.resize(5);
  size_t cycles = 0;
  for (const auto& [site, hits] : sites) {
    for (uint64_t hit : {uint64_t{1}, std::max<uint64_t>(1, hits / 2)}) {
      const uint64_t seed = recon_seed + cycles;
      const auto workload = ClusterTortureWorkload(seed);
      const std::string dir = NewDir("kill" + std::to_string(cycles));
      const std::string ack = dir + ".ack";
      const std::string schedule =
          site + "=kill@" + std::to_string(hit);
      const auto child = ForkClusterChild(dir, ack, schedule, seed);
      ASSERT_TRUE(child.killed || child.exit_code == kClusterChildCompleted)
          << schedule << " seed=" << seed
          << ": child failed outside the schedule, exit="
          << child.exit_code;

      // Recover: all shards must open, and each must be a byte-exact
      // reference prefix of its routed subsequence; jointly they must
      // cover every acknowledged record.
      ClusterOptions copts;
      copts.shards = kTortureShards;
      copts.parallel_ingest = false;
      auto cluster = ClusterEngine<Pbe1>::Open(
          env_, dir, TortureClusterOptions(), copts,
          TortureClusterDurability());
      ASSERT_TRUE(cluster.ok())
          << schedule << ": cluster recovery failed: "
          << cluster.status().ToString();
      const ShardRouter& router = cluster.value()->router();

      size_t recovered_total = 0;
      for (size_t s = 0; s < kTortureShards; ++s) {
        const auto routed = RoutedSubsequence(workload, router, s);
        const size_t k = static_cast<size_t>(
            cluster.value()->shard(s)->engine().TotalCount());
        ASSERT_LE(k, routed.size()) << schedule << " " << ShardDirName(s);
        recovered_total += k;
        BurstEngine<Pbe1> reference(TortureClusterOptions());
        for (size_t i = 0; i < k; ++i) {
          ASSERT_TRUE(reference.Append(routed[i].id, routed[i].time).ok());
        }
        EXPECT_EQ(EngineBytes(cluster.value()->shard(s)->engine()),
                  EngineBytes(reference))
            << schedule << " seed=" << seed << " " << ShardDirName(s)
            << " recovered K=" << k
            << " not byte-identical to its reference prefix";
      }
      EXPECT_GE(recovered_total, child.acked)
          << schedule << " seed=" << seed << ": acknowledged records lost";

      // Converge: finish the workload per shard, checkpoint, and
      // verify the full references — then query equivalence against a
      // never-crashed single engine (collision-free grid).
      for (size_t s = 0; s < kTortureShards; ++s) {
        const auto routed = RoutedSubsequence(workload, router, s);
        for (size_t i = static_cast<size_t>(
                 cluster.value()->shard(s)->engine().TotalCount());
             i < routed.size(); ++i) {
          ASSERT_TRUE(
              cluster.value()->shard(s)->Append(routed[i].id, routed[i].time)
                  .ok());
        }
      }
      ASSERT_TRUE(cluster.value()->Checkpoint().ok());

      BurstEngine<Pbe1> single(TortureClusterOptions());
      for (const auto& r : workload) {
        ASSERT_TRUE(single.Append(r.id, r.time).ok());
      }
      auto snap = cluster.value()->AcquireSnapshot();
      EXPECT_EQ(snap->total_count(), single.TotalCount());
      const Timestamp hi = single.Watermark();
      for (EventId e = 0; e < 8; ++e) {
        EXPECT_NEAR(snap->Point(e, hi, 2).value, single.PointQuery(e, hi, 2),
                    kIdentityTol)
            << schedule << " seed=" << seed << " post-converge e=" << e;
      }
      ++cycles;
    }
  }
  ASSERT_GT(cycles, 0u);
}

#else  // BURSTHIST_NO_FAULT

TEST_F(ShardEquivalenceTest, RecoveryIsByteIdenticalPerShardAfterKills) {
  GTEST_SKIP() << "built with BURSTHIST_NO_FAULT: crashpoints compile to "
                  "no-ops, nothing to torture";
}

#endif  // BURSTHIST_NO_FAULT

}  // namespace
}  // namespace test
}  // namespace bursthist
