// Differential guarantee checks against the exact oracle (the PR's
// tentpole): randomized streams from five generator families, fed to
// the per-event PBEs, the CM-PBE grids, and every BurstEngine variant,
// with the paper's Lemma 1 / Lemma 4 / Lemma 5 error bounds COMPUTED
// per run from the structures' own state (see diff_harness.h).
//
// Reproducing a failure: every violation message carries the full
// generator spec and the sweep prints a one-line reproducer of the form
//
//   BURSTHIST_DIFF_SPEC='bursty universe=8 n=17 seed=123 lateness=0'
//     ctest -R differential_test --output-on-failure
//
// which re-runs exactly that (minimized) stream through the Repro test
// below. BURSTHIST_TEST_SEED reseeds the whole sweep.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>
#include <unistd.h>

#include "core/burst_engine.h"
#include "differential/diff_harness.h"
#include "recovery/durable_engine.h"
#include "test_util.h"
#include "util/env.h"

namespace bursthist {
namespace {

using test::DiffConfig;
using test::StreamFamily;
using test::StreamSpec;

constexpr StreamFamily kFamilies[] = {
    StreamFamily::kUniform, StreamFamily::kBursty, StreamFamily::kStaircase,
    StreamFamily::kDuplicates, StreamFamily::kOutOfOrder};

StreamSpec SweepSpec(StreamFamily family, size_t i) {
  StreamSpec spec;
  spec.family = family;
  spec.universe = 8;
  spec.n = 224;
  spec.seed = test::CaseSeed(1000 * (static_cast<uint64_t>(family) + 1) + i);
  spec.max_lateness = family == StreamFamily::kOutOfOrder ? 6 : 0;
  return spec;
}

void ReportViolations(const StreamSpec& spec, const DiffConfig& config,
                      const test::Violations& violations) {
  const StreamSpec minimized = test::MinimizeStructureFailure(spec, config);
  std::string msg = "guarantee violation(s) for spec {" + spec.ToString() +
                    "}, minimized to {" + minimized.ToString() +
                    "}\nreproduce: " + test::ReproCommand(minimized) + "\n";
  for (const auto& v : violations) msg += "  " + v + "\n";
  ADD_FAILURE() << msg;
}

// The acceptance-criteria sweep: >= 4 stream families x >= 100 seeds,
// every structure, all three query types, computed bounds.
TEST(DifferentialSweep, LemmaBoundsAcrossFamiliesAndSeeds) {
  const DiffConfig config = DiffConfig::Small();
  constexpr size_t kSeedsPerFamily = 110;
  size_t failures = 0;
  for (StreamFamily family : kFamilies) {
    for (size_t i = 0; i < kSeedsPerFamily; ++i) {
      const StreamSpec spec = SweepSpec(family, i);
      const auto violations = test::RunStructureDifferential(spec, config);
      if (!violations.empty()) {
        ReportViolations(spec, config, violations);
        if (++failures >= 3) return;  // enough to debug; stop the sweep
      }
    }
  }
}

// Reruns one spec from the environment — the reproducer entry point
// printed by ReportViolations. Skipped unless BURSTHIST_DIFF_SPEC is
// set.
TEST(DifferentialRepro, FromEnvironmentSpec) {
  const char* text = std::getenv("BURSTHIST_DIFF_SPEC");
  if (text == nullptr) {
    GTEST_SKIP() << "set BURSTHIST_DIFF_SPEC to replay a failing spec";
  }
  StreamSpec spec;
  ASSERT_TRUE(StreamSpec::Parse(text, &spec))
      << "unparsable BURSTHIST_DIFF_SPEC: " << text;
  const DiffConfig config = DiffConfig::Small();
  const auto violations = test::RunStructureDifferential(spec, config);
  for (const auto& v : violations) ADD_FAILURE() << v;
}

// ---------------------------------------------------------------------------
// Engine variants: serial vs segment-parallel vs serialize-roundtrip
// vs durable+recovered must agree with each other, and the leaf level
// must honor its computed grid band against the oracle.
// ---------------------------------------------------------------------------

using Engine1 = BurstEngine<Pbe1>;

BurstEngineOptions<Pbe1> EngineOptions(EventId universe, Timestamp lateness,
                                       size_t threads) {
  BurstEngineOptions<Pbe1> o;
  o.universe_size = universe;
  o.grid.depth = 2;
  o.grid.width = 7;
  // Lossless cells (budget == buffer): segment-parallel builds only
  // promise bit-equality with serial ingestion when no staircase
  // compression happens, since compression boundaries shift with the
  // segment cuts. Lossy-cell approximation error is covered against
  // the oracle by the DifferentialSweep instead. Collisions (width 7
  // over a universe of 24) keep the grid band check non-trivial.
  o.cell.buffer_points = 24;
  o.cell.budget_points = 24;
  o.heavy_hitter_capacity = 4;
  o.max_lateness = lateness;
  o.ingest_threads = threads;
  return o;
}

void ExpectEnginesAgree(const Engine1& a, const Engine1& b,
                        const ExactBurstStore& oracle,
                        const test::QueryPlan& plan, const std::string& label) {
  for (const auto& [t, tau] : plan.points) {
    for (EventId e = 0; e < a.universe_size(); ++e) {
      EXPECT_NEAR(a.PointQuery(e, t, tau), b.PointQuery(e, t, tau),
                  test::kIdentityTol)
          << label << " e=" << e << " t=" << t << " tau=" << tau;
      EXPECT_NEAR(a.CumulativeQuery(e, t), b.CumulativeQuery(e, t),
                  test::kIdentityTol)
          << label << " e=" << e << " t=" << t;
    }
  }
  for (const auto& q : plan.events) {
    EXPECT_EQ(a.BurstyEventQuery(q.t, q.theta, q.tau),
              b.BurstyEventQuery(q.t, q.theta, q.tau))
        << label << " t=" << q.t << " theta=" << q.theta;
  }
  (void)oracle;
}

// The dyadic BURSTY EVENT invariants that hold regardless of pruning
// noise: the reported set is sorted, duplicate-free, and a subset of
// the leaf scan (the leaf check IS PointQuery >= theta); and any event
// whose EXACT burstiness clears theta by the leaf band appears in the
// leaf scan.
void CheckEngineEventInvariants(const Engine1& engine,
                                const ExactBurstStore& oracle,
                                const test::GridOracleBounds<Pbe1>& bounds,
                                const test::QueryPlan& plan,
                                const std::string& label) {
  for (const auto& q : plan.events) {
    const auto reported = engine.BurstyEventQuery(q.t, q.theta, q.tau);
    EXPECT_TRUE(std::is_sorted(reported.begin(), reported.end())) << label;
    EXPECT_EQ(std::adjacent_find(reported.begin(), reported.end()),
              reported.end())
        << label << ": duplicate ids reported";
    std::vector<EventId> leaf_scan;
    for (EventId e = 0; e < engine.universe_size(); ++e) {
      if (engine.PointQuery(e, q.t, q.tau) >= q.theta) leaf_scan.push_back(e);
    }
    EXPECT_TRUE(std::includes(leaf_scan.begin(), leaf_scan.end(),
                              reported.begin(), reported.end()))
        << label << " t=" << q.t << " theta=" << q.theta
        << ": reported set is not a subset of the leaf scan";
    for (EventId e = 0; e < engine.universe_size(); ++e) {
      const double exact =
          static_cast<double>(oracle.BurstinessAt(e, q.t, q.tau));
      const double band = bounds.BurstinessBound(e, q.t, q.tau);
      const bool in_leaf_scan =
          std::binary_search(leaf_scan.begin(), leaf_scan.end(), e);
      EXPECT_TRUE(in_leaf_scan || exact < q.theta + band + 1e-6)
          << label << " t=" << q.t << " theta=" << q.theta << ": event " << e
          << " with exact b=" << exact
          << " clears theta+band=" << q.theta + band
          << " but the leaf scan misses it";
    }
  }
  // TOP-K: every (id, value) pair must echo the leaf estimate, in
  // descending value order.
  for (const auto& q : plan.events) {
    const auto top = engine.TopKBurstyEvents(q.t, 3, q.tau);
    double prev = std::numeric_limits<double>::infinity();
    for (const auto& [e, b] : top) {
      EXPECT_NEAR(b, engine.PointQuery(e, q.t, q.tau), test::kIdentityTol)
          << label;
      EXPECT_LE(b, prev + test::kIdentityTol) << label;
      prev = b;
    }
  }
}

TEST(DifferentialEngine, VariantsAgreeAndHonorLeafBand) {
  Env* env = Env::Default();
  const DiffConfig config = DiffConfig::Small();
  size_t run = 0;
  for (StreamFamily family : kFamilies) {
    for (size_t i = 0; i < 2; ++i, ++run) {
      StreamSpec spec;
      spec.family = family;
      spec.universe = 24;
      spec.n = 400;
      spec.seed = test::CaseSeed(9000 + run);
      spec.max_lateness = family == StreamFamily::kOutOfOrder ? 6 : 0;
      SCOPED_TRACE(spec.ToString());

      const auto arrivals = test::GenerateArrivals(spec);
      const EventStream sorted = test::SortedStream(arrivals);
      ExactBurstStore oracle(spec.universe);
      ASSERT_TRUE(oracle.AppendStream(sorted).ok());
      const test::QueryPlan plan = test::MakeQueryPlan(oracle, spec.seed);

      // Serial, in arrival order (buffered re-ordering for the
      // out-of-order family).
      Engine1 serial(EngineOptions(spec.universe, spec.max_lateness, 1));
      for (const auto& r : arrivals) {
        ASSERT_TRUE(serial.Append(r.id, r.time).ok());
      }
      serial.Finalize();

      // Segment-parallel bulk build over the sorted stream.
      Engine1 parallel(EngineOptions(spec.universe, 0, 3));
      ASSERT_TRUE(parallel.AppendStream(sorted).ok());
      parallel.Finalize();

      // Serialize / deserialize round-trip of the serial engine.
      BinaryWriter w;
      serial.Serialize(&w);
      Engine1 roundtrip(EngineOptions(spec.universe, spec.max_lateness, 1));
      BinaryReader r(w.bytes());
      ASSERT_TRUE(roundtrip.Deserialize(&r).ok());

      // Durable: append through the WAL tee, checkpoint mid-stream,
      // then recover read-only — must match the never-persisted serial
      // engine exactly (PR-1 x PR-2 interaction surface).
      const std::string dir = testing::TempDir() + "/bursthist_diff_" +
                              std::to_string(::getpid()) + "_" +
                              std::to_string(run);
      {
        auto durable = DurableBurstEngine<Pbe1>::Open(
            env, dir, EngineOptions(spec.universe, spec.max_lateness, 1));
        ASSERT_TRUE(durable.ok());
        size_t appended = 0;
        for (const auto& re : arrivals) {
          ASSERT_TRUE(durable.value()->Append(re.id, re.time).ok());
          if (++appended == arrivals.size() / 2) {
            ASSERT_TRUE(durable.value()->Checkpoint().ok());
          }
        }
        ASSERT_TRUE(durable.value()->Sync().ok());
      }  // "crash": drop the handle without a final checkpoint
      auto recovered = RecoverBurstEngine<Pbe1>(
          env, dir, EngineOptions(spec.universe, spec.max_lateness, 1));
      ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
      recovered.value().Finalize();

      ExpectEnginesAgree(serial, parallel, oracle, plan, "serial-vs-parallel");
      ExpectEnginesAgree(serial, roundtrip, oracle, plan,
                         "serial-vs-roundtrip");
      ExpectEnginesAgree(serial, recovered.value(), oracle, plan,
                         "serial-vs-recovered");

      // Leaf-level band vs the oracle, plus BURSTY EVENT invariants.
      test::GridOracleBounds<Pbe1> bounds(serial.index().level(0), oracle);
      test::GridView<Pbe1> leaf{&serial.index().level(0), &bounds,
                                spec.universe};
      test::Violations violations;
      CheckStructure(leaf, oracle, plan, "ENGINE-LEAF (" + spec.ToString() +
                     ")", &violations, config.max_violations);
      for (const auto& v : violations) ADD_FAILURE() << v;
      CheckEngineEventInvariants(serial, oracle, bounds, plan, "serial");

      // Cleanup.
      auto names = env->ListDir(dir);
      if (names.ok()) {
        for (const auto& n : names.value()) (void)env->DeleteFile(dir + "/" + n);
      }
      ::rmdir(dir.c_str());
    }
  }
}

// ---------------------------------------------------------------------------
// Lemma 5, statistical form: with the kMin estimator, eps = e / width
// and delta = e^-depth computed from the ACTUAL grid shape, the rate
// of |b~ - b| > eps*N + 4*Delta across independent hash seeds must not
// exceed delta (plus 3-sigma binomial slack). The deterministic
// per-instance band above is the stronger check; this one pins the
// guarantee's advertised (eps, delta) form.
// ---------------------------------------------------------------------------
TEST(DifferentialSweep, CmPbeLemma5StatisticalBound) {
  StreamSpec spec;
  spec.family = StreamFamily::kBursty;
  spec.universe = 8;
  spec.n = 200;
  spec.seed = test::CaseSeed(424242);
  const auto stream = test::SortedStream(test::GenerateArrivals(spec));
  ExactBurstStore oracle(spec.universe);
  ASSERT_TRUE(oracle.AppendStream(stream).ok());
  const test::QueryPlan plan = test::MakeQueryPlan(oracle, spec.seed);
  ASSERT_GE(plan.points.size(), 5u);

  CmPbeOptions grid_opts;
  grid_opts.depth = 3;
  grid_opts.width = 8;
  grid_opts.estimator = CmEstimator::kMin;
  const double eps = std::exp(1.0) / static_cast<double>(grid_opts.width);
  const double delta = std::exp(-static_cast<double>(grid_opts.depth));

  Pbe1Options cell;
  cell.buffer_points = 24;
  cell.budget_points = 6;

  constexpr size_t kTrialsPerSeed = 5;
  constexpr size_t kSeeds = 120;
  size_t trials = 0, violations = 0;
  for (size_t s = 0; s < kSeeds; ++s) {
    grid_opts.seed = test::CaseSeed(50000 + s);
    CmPbe<Pbe1> grid(grid_opts, cell);
    for (const auto& r : stream.records()) grid.Append(r.id, r.time);
    grid.Finalize();
    double max_delta = 0.0;
    for (size_t row = 0; row < grid.depth(); ++row) {
      for (size_t slot = 0; slot < grid.width(); ++slot) {
        max_delta = std::max(max_delta,
                             test::CellPointError(grid.CellAt(row, slot)));
      }
    }
    const double bound =
        eps * static_cast<double>(grid.TotalCount()) + 4.0 * max_delta;
    for (size_t q = 0; q < kTrialsPerSeed; ++q) {
      const auto& [t, tau] = plan.points[q % plan.points.size()];
      const EventId e = static_cast<EventId>(q % spec.universe);
      const double exact =
          static_cast<double>(oracle.BurstinessAt(e, t, tau));
      const double est = grid.EstimateBurstiness(e, t, tau);
      ++trials;
      if (std::abs(est - exact) > bound + test::kAccumTol) ++violations;
    }
  }
  // Binomial(trials, delta) with 3-sigma headroom: flakes only if the
  // guarantee is genuinely broken, not on an unlucky seed.
  const double mean = delta * static_cast<double>(trials);
  const double sigma =
      std::sqrt(static_cast<double>(trials) * delta * (1.0 - delta));
  EXPECT_LE(static_cast<double>(violations), mean + 3.0 * sigma)
      << "Lemma 5 violation rate " << violations << "/" << trials
      << " exceeds delta=" << delta << " plus 3 sigma";
}

}  // namespace
}  // namespace bursthist
