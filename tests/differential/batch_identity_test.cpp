// Byte-identity tier for the batched ingest hot path: every stream
// family from the differential harness, ingested three ways — one
// Append per record, AppendBatch at a sweep of batch sizes (1, 7, 64,
// 4096, whole-stream), and through the lock-free MPSC ring the ingest
// server uses — must finalize to byte-identical engine state. This
// holds EXACTLY (not within tolerance): the batch fast path replays
// each grid cell's updates in record order, and the buffered path
// replays the serial admission sequence per record, so any divergence
// is a bug, not approximation noise. Cap/backpressure policies are
// swept too, where per-record admission decisions depend on the
// instantaneous buffer depth.
//
// A batch that hits a refused record aborts with the applied prefix
// reported; identity with the tolerant serial loop (which skips the
// refused record and keeps going) is recovered by resubmitting the
// suffix past the failure — the same loop the ingest server runs.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/burst_engine.h"
#include "differential/diff_harness.h"
#include "test_util.h"
#include "util/mpsc_ring.h"
#include "util/serialize.h"

namespace bursthist {
namespace {

using test::StreamFamily;
using test::StreamSpec;

constexpr StreamFamily kFamilies[] = {
    StreamFamily::kUniform, StreamFamily::kBursty, StreamFamily::kStaircase,
    StreamFamily::kDuplicates, StreamFamily::kOutOfOrder};

using Engine1 = BurstEngine<Pbe1>;

BurstEngineOptions<Pbe1> EngineOptions(const StreamSpec& spec) {
  BurstEngineOptions<Pbe1> o;
  o.universe_size = spec.universe;
  o.grid.depth = 2;
  o.grid.width = 7;
  o.cell.buffer_points = 24;
  o.cell.budget_points = 24;
  o.heavy_hitter_capacity = 4;
  o.max_lateness = spec.max_lateness;
  return o;
}

std::vector<uint8_t> Bytes(const Engine1& engine) {
  BinaryWriter w;
  engine.Serialize(&w);
  return w.TakeBytes();
}

// Deterministic weights (not all 1) so the weighted batch lanes —
// the SoA count split and the WeightedRecord overloads — are covered
// by the same identity sweep.
std::vector<WeightedRecord> Weighted(const std::vector<EventRecord>& arrivals) {
  std::vector<WeightedRecord> records;
  records.reserve(arrivals.size());
  for (size_t i = 0; i < arrivals.size(); ++i) {
    records.push_back(
        WeightedRecord{arrivals[i].id, arrivals[i].time, 1 + i % 3});
  }
  return records;
}

// The tolerant serial reference: refused records (late arrivals, cap
// rejections) are skipped, everything else must land.
Engine1 BuildSerial(const BurstEngineOptions<Pbe1>& options,
                    const std::vector<WeightedRecord>& records) {
  Engine1 engine(options);
  for (const auto& r : records) (void)engine.Append(r.id, r.time, r.count);
  engine.Finalize();
  return engine;
}

// Chunked AppendBatch with the server's resubmit-suffix loop: a
// failed batch reports how many records applied; skip the refused
// record and resubmit the rest, reproducing the serial skip exactly.
void AppendBatchTolerant(Engine1* engine,
                         std::span<const WeightedRecord> span) {
  while (!span.empty()) {
    size_t applied = 0;
    const Status st = engine->AppendBatch(span, &applied);
    if (st.ok()) break;
    span = span.subspan(applied + 1);
  }
}

Engine1 BuildBatched(const BurstEngineOptions<Pbe1>& options,
                     const std::vector<WeightedRecord>& records,
                     size_t batch_size) {
  Engine1 engine(options);
  const std::span<const WeightedRecord> all(records);
  for (size_t begin = 0; begin < records.size(); begin += batch_size) {
    AppendBatchTolerant(&engine,
                        all.subspan(begin, std::min(batch_size,
                                                    records.size() - begin)));
  }
  engine.Finalize();
  return engine;
}

// Every family, every batch size in the acceptance sweep, weighted
// records, byte-for-byte equality against the per-record build.
TEST(BatchIdentity, BatchSizesMatchSerialBytesAcrossFamilies) {
  for (StreamFamily family : kFamilies) {
    StreamSpec spec;
    spec.family = family;
    spec.universe = 8;
    spec.n = 320;
    spec.seed = test::CaseSeed(7100 + static_cast<uint64_t>(family));
    spec.max_lateness = family == StreamFamily::kOutOfOrder ? 6 : 0;
    SCOPED_TRACE(spec.ToString());

    const auto records = Weighted(test::GenerateArrivals(spec));
    const auto serial_bytes = Bytes(BuildSerial(EngineOptions(spec), records));
    for (size_t batch_size : {size_t{1}, size_t{7}, size_t{64}, size_t{4096},
                              records.size()}) {
      EXPECT_EQ(Bytes(BuildBatched(EngineOptions(spec), records, batch_size)),
                serial_bytes)
          << "batch_size=" << batch_size;
    }
  }
}

// AppendStream is routed through AppendBatch now; pin its identity
// with the per-record build on the sorted stream (every family's
// sorted form is a valid max_lateness=0 stream).
TEST(BatchIdentity, AppendStreamMatchesPerEventAppend) {
  for (StreamFamily family : kFamilies) {
    StreamSpec spec;
    spec.family = family;
    spec.universe = 8;
    spec.n = 320;
    spec.seed = test::CaseSeed(7200 + static_cast<uint64_t>(family));
    spec.max_lateness = family == StreamFamily::kOutOfOrder ? 6 : 0;
    SCOPED_TRACE(spec.ToString());
    const EventStream sorted =
        test::SortedStream(test::GenerateArrivals(spec));

    StreamSpec ordered = spec;
    ordered.max_lateness = 0;
    Engine1 serial(EngineOptions(ordered));
    for (const auto& r : sorted.records()) {
      ASSERT_TRUE(serial.Append(r.id, r.time).ok());
    }
    serial.Finalize();

    Engine1 streamed(EngineOptions(ordered));
    ASSERT_TRUE(streamed.AppendStream(sorted).ok());
    streamed.Finalize();
    EXPECT_EQ(Bytes(streamed), Bytes(serial));
  }
}

// The ingest-server shape: a producer thread slices the arrival
// sequence into jobs and pushes them through the bounded MPSC ring
// (spinning on full — the backpressure path); the consumer pops and
// feeds AppendBatch. Ring transport must not change a single byte.
// Runs under the tsan ctest label.
TEST(BatchIdentity, MpscRingPipelineMatchesSerialBytes) {
  constexpr size_t kChunk = 16;
  for (StreamFamily family : kFamilies) {
    StreamSpec spec;
    spec.family = family;
    spec.universe = 8;
    spec.n = 320;
    spec.seed = test::CaseSeed(7300 + static_cast<uint64_t>(family));
    spec.max_lateness = family == StreamFamily::kOutOfOrder ? 6 : 0;
    SCOPED_TRACE(spec.ToString());
    const auto records = Weighted(test::GenerateArrivals(spec));
    const auto serial_bytes = Bytes(BuildSerial(EngineOptions(spec), records));

    // Jobs are (begin, length) slices; an 8-slot ring against 20
    // chunks forces wrap-around and full-ring retries.
    MpscRing<std::pair<size_t, size_t>> ring(8);
    std::atomic<bool> done{false};
    std::thread producer([&] {
      for (size_t begin = 0; begin < records.size(); begin += kChunk) {
        const std::pair<size_t, size_t> job{
            begin, std::min(kChunk, records.size() - begin)};
        while (!ring.TryPush(job)) std::this_thread::yield();
      }
      done.store(true, std::memory_order_release);
    });

    Engine1 engine(EngineOptions(spec));
    const std::span<const WeightedRecord> all(records);
    for (;;) {
      std::pair<size_t, size_t> job;
      if (ring.Pop(&job)) {
        AppendBatchTolerant(&engine, all.subspan(job.first, job.second));
        continue;
      }
      if (done.load(std::memory_order_acquire) && ring.ApproxSize() == 0) {
        break;
      }
      std::this_thread::yield();
    }
    producer.join();
    engine.Finalize();
    EXPECT_EQ(Bytes(engine), serial_bytes);
  }
}

// Cap/backpressure interactions: with a small re-order buffer every
// overflow policy makes per-record admission decisions that depend on
// the instantaneous depth. The batch path replays them one by one, so
// rejects, drops, and forced drains must land on the same records —
// the serialized state (which includes dropped/forced counters and
// the live buffer) is compared byte-for-byte.
TEST(BatchIdentity, CapAndBackpressureMatchSerialBytes) {
  constexpr ReorderOverflowPolicy kPolicies[] = {
      ReorderOverflowPolicy::kReject, ReorderOverflowPolicy::kDropOldest,
      ReorderOverflowPolicy::kForceDrain};
  StreamSpec spec;
  spec.family = StreamFamily::kOutOfOrder;
  spec.universe = 8;
  spec.n = 320;
  spec.seed = test::CaseSeed(7400);
  spec.max_lateness = 6;
  const auto records = Weighted(test::GenerateArrivals(spec));

  for (ReorderOverflowPolicy policy : kPolicies) {
    SCOPED_TRACE("policy=" + std::to_string(static_cast<int>(policy)));
    BurstEngineOptions<Pbe1> options = EngineOptions(spec);
    options.max_reorder_events = 4;  // small: the cap fires constantly
    options.overflow_policy = policy;

    const Engine1 serial = BuildSerial(options, records);
    // The cap must actually bite for this sweep to mean anything.
    if (policy == ReorderOverflowPolicy::kDropOldest) {
      EXPECT_GT(serial.DroppedCount(), 0u);
    }
    const auto serial_bytes = Bytes(serial);
    for (size_t batch_size :
         {size_t{1}, size_t{7}, size_t{64}, records.size()}) {
      EXPECT_EQ(Bytes(BuildBatched(options, records, batch_size)),
                serial_bytes)
          << "batch_size=" << batch_size;
    }
  }
}

}  // namespace
}  // namespace bursthist
