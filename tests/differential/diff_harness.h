// Differential test harness: randomized streams checked against the
// exact oracle with PER-RUN COMPUTED guarantee bounds.
//
// The paper's value proposition is its error guarantees:
//
//   PBE-1   |b~(t) - b(t)| <= 4 * Delta      (Lemma 1; Delta = the
//           largest single-buffer DP area error, pointwise form)
//   PBE-2   |b~(t) - b(t)| <= 4 * gamma      (Lemma 4)
//   CM-PBE  |b~(t) - b(t)| <= eps*N + 4*Delta w.p. >= 1 - delta
//           (Lemma 5; gamma replaces Delta for CM-PBE-2)
//
// This harness generates seeded streams from several adversarial
// families, feeds the SAME stream to ExactBurstStore (the oracle) and
// to every approximate structure, and asserts the bounds — computed
// from each run's actual state, never hard-coded:
//
//  * For bare PBEs the bound is 4 * MaxBufferAreaError() / MaxGamma().
//  * For CM-PBE grids the harness goes further than Lemma 5's
//    probabilistic statement: knowing the hash functions and the exact
//    oracle, it computes the EXACT collision mass of every cell an
//    event maps to, yielding a deterministic per-instance band
//        F_e(t) - D_e  <=  F~_e(t)  <=  F_e(t) + C_e(t)
//    where D_e is the worst mapped-cell undershoot and C_e(t) the
//    estimator-combined (median / min) collision mass. Every query on
//    every seed must land inside the implied burstiness band — no
//    probability, no slack beyond float tolerance. Lemma 5's
//    statistical form (rate of eps*N + 4*Delta violations <= delta
//    across seeds) is checked separately on top.
//
// All three query types are exercised: POINT (sampled (t, tau)),
// BURSTY TIME (interval soundness against the oracle), and BURSTY
// EVENT (set containment under the computed bands; for the dyadic
// engine additionally R ⊆ leaf-scan, the algorithm's exact filter
// invariant — pruning may legitimately lose recall, the paper's
// cancellation caveat, so missing ids are only a violation when the
// leaf scan itself breaks its band).
//
// Any violation reports the generator spec and a one-line reproducer;
// RunMinimized*() shrinks the stream to the shortest failing prefix
// first (generators draw records sequentially, so a spec with smaller
// n is a prefix of the same spec with larger n).

#ifndef BURSTHIST_TESTS_DIFFERENTIAL_DIFF_HARNESS_H_
#define BURSTHIST_TESTS_DIFFERENTIAL_DIFF_HARNESS_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/burst_queries.h"
#include "core/cm_pbe.h"
#include "core/exact_store.h"
#include "core/pbe1.h"
#include "core/pbe2.h"
#include "stream/event_stream.h"
#include "stream/types.h"

namespace bursthist {
namespace test {

// ---------------------------------------------------------------------------
// Stream generation
// ---------------------------------------------------------------------------

/// Stream families stressing different failure modes.
enum class StreamFamily : uint8_t {
  kUniform = 0,    ///< steady trickle, uniform ids
  kBursty = 1,     ///< quiet / storm phases with hot-id sets
  kStaircase = 2,  ///< adversarial: long plateaus + vertical walls
  kDuplicates = 3, ///< heavy same-timestamp batches, skewed ids
  kOutOfOrder = 4, ///< late arrivals within a bounded lateness window
};

const char* FamilyName(StreamFamily family);

/// A fully-seeded generator spec: (family, universe, n, seed,
/// max_lateness) determines the stream byte-for-byte. Record i never
/// depends on n, so truncating n yields a prefix of the same stream —
/// the property the failure minimizer relies on.
struct StreamSpec {
  StreamFamily family = StreamFamily::kUniform;
  EventId universe = 8;
  size_t n = 320;
  uint64_t seed = 1;
  /// Arrival-order lateness bound (only kOutOfOrder produces
  /// out-of-order arrivals; others ignore it).
  Timestamp max_lateness = 0;

  std::string ToString() const;
  /// Parses ToString() output; false on malformed input.
  static bool Parse(const std::string& text, StreamSpec* out);
};

/// The stream in ARRIVAL order (out of order only for kOutOfOrder,
/// and then never more than spec.max_lateness behind the running max).
std::vector<EventRecord> GenerateArrivals(const StreamSpec& spec);

/// Time-sorted copy of the arrivals — what the oracle (and any
/// structure requiring ordered input) ingests. Sorting is stable, so
/// equal-time records keep arrival order.
EventStream SortedStream(const std::vector<EventRecord>& arrivals);

// ---------------------------------------------------------------------------
// Query sampling
// ---------------------------------------------------------------------------

/// Sampled query parameters, derived deterministically from the spec:
/// timestamps cover before-first / inside / after-last, taus cover
/// 1 .. beyond-history, and thetas straddle the exact burstiness range.
struct QueryPlan {
  /// POINT samples evaluated for every event id.
  std::vector<std::pair<Timestamp, Timestamp>> points;  // (t, tau)
  /// BURSTY TIME samples evaluated for every event id.
  std::vector<std::pair<double, Timestamp>> times;  // (theta, tau)
  /// BURSTY EVENT samples.
  struct EventQuery {
    Timestamp t;
    double theta;
    Timestamp tau;
  };
  std::vector<EventQuery> events;
};

QueryPlan MakeQueryPlan(const ExactBurstStore& oracle, uint64_t seed);

// ---------------------------------------------------------------------------
// Per-run computed bounds for CM-PBE grids
// ---------------------------------------------------------------------------

/// Pointwise undershoot of one PBE cell (the guarantee the cell keeps
/// against its own merged curve).
inline double CellPointError(const Pbe1& cell) {
  return cell.MaxBufferAreaError();
}
inline double CellPointError(const Pbe2& cell) { return cell.MaxGamma(); }

/// Exact per-instance error band of a CM-PBE grid against the oracle.
///
/// Row r's cell for event e stores the merged curve F_e + C_{r,e}
/// where C_{r,e}(t) is the exact collision mass (sum of colliding
/// events' cumulative frequencies, computable from the oracle). The
/// cell never overestimates its merged curve and undershoots by at
/// most CellPointError, so
///     F_e(t) - D_{r,e} <= est_r <= F_e(t) + C_{r,e}(t).
/// The lower-median combine keeps the max-D lower bound and the
/// lower-median-of-C upper bound; min keeps max-D and min-of-C.
template <typename PbeT>
class GridOracleBounds {
 public:
  GridOracleBounds(const CmPbe<PbeT>& grid, const ExactBurstStore& oracle)
      : grid_(&grid), oracle_(&oracle) {
    const size_t d = grid.depth();
    const EventId k = oracle.universe_size();
    slot_.assign(d, std::vector<size_t>(k, 0));
    delta_.assign(d, std::vector<double>(k, 0.0));
    for (size_t r = 0; r < d; ++r) {
      for (EventId e = 0; e < k; ++e) {
        slot_[r][e] = grid.SlotOf(r, e);
        delta_[r][e] = CellPointError(grid.CellAt(r, slot_[r][e]));
      }
    }
  }

  /// Worst pointwise undershoot across the cells e maps to.
  double Undershoot(EventId e) const {
    double worst = 0.0;
    for (size_t r = 0; r < slot_.size(); ++r) {
      worst = std::max(worst, delta_[r][e]);
    }
    return worst;
  }

  /// Estimator-combined exact collision mass of e at time t.
  double CollisionAt(EventId e, Timestamp t) const {
    const size_t d = slot_.size();
    std::vector<double> mass(d, 0.0);
    for (size_t r = 0; r < d; ++r) {
      for (EventId o = 0; o < oracle_->universe_size(); ++o) {
        if (o != e && slot_[r][o] == slot_[r][e]) {
          mass[r] += static_cast<double>(oracle_->CumulativeFrequency(o, t));
        }
      }
    }
    if (grid_->options().estimator == CmEstimator::kMin) {
      return *std::min_element(mass.begin(), mass.end());
    }
    // Lower median, matching CmPbe::Combine: at least mid+1 rows have
    // collision mass <= the mid-th smallest, so the lower median of
    // the row estimates is <= F + that value.
    const size_t mid = (d - 1) / 2;
    std::nth_element(mass.begin(), mass.begin() + mid, mass.end());
    return mass[mid];
  }

  /// Deterministic bound on |b~_e(t) - b_e(t)| implied by the band:
  /// the error of F~ at x lies in [-D, C(x)], and b~ - b combines
  /// +err(t) - 2 err(t-tau) + err(t-2tau).
  double BurstinessBound(EventId e, Timestamp t, Timestamp tau) const {
    const double d2 = 2.0 * Undershoot(e);
    const double over =
        CollisionAt(e, t) + CollisionAt(e, t - 2 * tau) + d2;
    const double under = 2.0 * CollisionAt(e, t - tau) + d2;
    return std::max(over, under);
  }

 private:
  const CmPbe<PbeT>* grid_;
  const ExactBurstStore* oracle_;
  std::vector<std::vector<size_t>> slot_;   // [row][event] -> column
  std::vector<std::vector<double>> delta_;  // [row][event] -> cell error
};

// ---------------------------------------------------------------------------
// Structure views (uniform interface over per-event PBE arrays and grids)
// ---------------------------------------------------------------------------

/// One finalized PBE per event id (the paper's Section III deployment).
template <typename PbeT>
struct PbeArrayView {
  static constexpr bool kPiecewiseConstant = PbeT::kPiecewiseConstant;
  /// For a single PBE, b~ really is piecewise-linear between the
  /// shifted breakpoints, so BurstyTimes is exact w.r.t. the point
  /// estimates and interval consistency is a hard invariant.
  static constexpr bool kExactIntervals = true;
  const std::vector<PbeT>* pbes;

  double Estimate(EventId e, Timestamp t, Timestamp tau) const {
    return (*pbes)[e].EstimateBurstiness(t, tau);
  }
  double EstimateCumulative(EventId e, Timestamp t) const {
    return (*pbes)[e].EstimateCumulative(t);
  }
  double Bound(EventId e, Timestamp, Timestamp) const {
    return 4.0 * CellPointError((*pbes)[e]);
  }
  double CumUpper(EventId, Timestamp) const { return 0.0; }
  double CumLower(EventId e) const { return CellPointError((*pbes)[e]); }
  std::vector<Timestamp> Breakpoints(EventId e) const {
    return (*pbes)[e].Breakpoints();
  }
  EventId universe() const { return static_cast<EventId>(pbes->size()); }
};

/// A CM-PBE grid with its per-run oracle-computed bounds.
template <typename PbeT>
struct GridView {
  static constexpr bool kPiecewiseConstant = PbeT::kPiecewiseConstant;
  /// Staircase cells: the median/min of staircases only changes at
  /// union breakpoints, so intervals are exact. Linear cells: the
  /// median of linear functions can kink BETWEEN breakpoints (the
  /// median row changes where two rows cross), which BurstyTimes's
  /// per-piece linearity assumption does not model — interval
  /// consistency is then only checked where it is well-defined.
  static constexpr bool kExactIntervals = PbeT::kPiecewiseConstant;
  const CmPbe<PbeT>* grid;
  const GridOracleBounds<PbeT>* bounds;
  EventId universe_size;

  double Estimate(EventId e, Timestamp t, Timestamp tau) const {
    return grid->EstimateBurstiness(e, t, tau);
  }
  double EstimateCumulative(EventId e, Timestamp t) const {
    return grid->EstimateCumulative(e, t);
  }
  double Bound(EventId e, Timestamp t, Timestamp tau) const {
    return bounds->BurstinessBound(e, t, tau);
  }
  double CumUpper(EventId e, Timestamp t) const {
    return bounds->CollisionAt(e, t);
  }
  double CumLower(EventId e) const { return bounds->Undershoot(e); }
  std::vector<Timestamp> Breakpoints(EventId e) const {
    return grid->Breakpoints(e);
  }
  EventId universe() const { return universe_size; }
};

// ---------------------------------------------------------------------------
// Checks
// ---------------------------------------------------------------------------

using Violations = std::vector<std::string>;

namespace internal {

/// Adapter presenting one event of a view to the BurstyTimes template.
template <typename View>
struct EventModel {
  static constexpr bool kPiecewiseConstant = View::kPiecewiseConstant;
  const View* view;
  EventId e;
  double EstimateBurstiness(Timestamp t, Timestamp tau) const {
    return view->Estimate(e, t, tau);
  }
  std::vector<Timestamp> Breakpoints() const { return view->Breakpoints(e); }
};

void AppendViolation(Violations* out, size_t cap, std::string message);

/// Candidate instants for BURSTY TIME soundness checks: exact change
/// points and model breakpoints shifted by {0, tau, 2tau}, interval
/// endpoints +- 1, subsampled to a bounded count.
std::vector<Timestamp> SampleInstants(const std::vector<Timestamp>& exact_bps,
                                      const std::vector<Timestamp>& model_bps,
                                      Timestamp tau,
                                      const std::vector<TimeInterval>& ivs,
                                      size_t cap);

}  // namespace internal

/// Runs POINT / BURSTY TIME / BURSTY EVENT guarantee checks for one
/// structure view against the oracle. Appends human-readable
/// violation descriptions to `out` (capped).
template <typename View>
void CheckStructure(const View& view, const ExactBurstStore& oracle,
                    const QueryPlan& plan, const std::string& label,
                    Violations* out, size_t cap = 16);

/// Full structure sweep for one spec: per-event PBE-1/PBE-2 arrays and
/// CM-PBE-1/CM-PBE-2 grids, all against the oracle.
struct DiffConfig {
  Pbe1Options pbe1;
  Pbe2Options pbe2;
  CmPbeOptions grid;
  size_t max_violations = 16;

  static DiffConfig Small();
};

Violations RunStructureDifferential(const StreamSpec& spec,
                                    const DiffConfig& config);

/// Prefix-minimizes a failing spec: the smallest n for which
/// RunStructureDifferential still reports a violation.
StreamSpec MinimizeStructureFailure(StreamSpec spec, const DiffConfig& config);

/// One-line reproducer for a spec (relies on the Repro test reading
/// BURSTHIST_DIFF_SPEC; see differential_test.cpp).
std::string ReproCommand(const StreamSpec& spec);

// ---------------------------------------------------------------------------
// Implementation of CheckStructure (header-only template)
// ---------------------------------------------------------------------------

template <typename View>
void CheckStructure(const View& view, const ExactBurstStore& oracle,
                    const QueryPlan& plan, const std::string& label,
                    Violations* out, size_t cap) {
  constexpr double kTol = 1e-6;  // float slack only; never guarantee slack
  const EventId k = view.universe();

  // POINT + cumulative band.
  for (const auto& [t, tau] : plan.points) {
    for (EventId e = 0; e < k; ++e) {
      if (out->size() >= cap) return;
      const double exact = static_cast<double>(oracle.BurstinessAt(e, t, tau));
      const double est = view.Estimate(e, t, tau);
      const double bound = view.Bound(e, t, tau);
      if (std::abs(est - exact) > bound + kTol) {
        internal::AppendViolation(
            out, cap,
            label + " POINT e=" + std::to_string(e) + " t=" +
                std::to_string(t) + " tau=" + std::to_string(tau) +
                ": |est-exact|=" + std::to_string(std::abs(est - exact)) +
                " > bound=" + std::to_string(bound));
      }
      const double f = static_cast<double>(oracle.CumulativeFrequency(e, t));
      const double fe = view.EstimateCumulative(e, t);
      if (fe > f + view.CumUpper(e, t) + kTol ||
          fe < f - view.CumLower(e) - kTol) {
        internal::AppendViolation(
            out, cap,
            label + " CUM e=" + std::to_string(e) + " t=" + std::to_string(t) +
                ": est=" + std::to_string(fe) + " outside [" +
                std::to_string(f - view.CumLower(e)) + ", " +
                std::to_string(f + view.CumUpper(e, t)) + "]");
      }
    }
  }

  // BURSTY TIME: interval soundness against the oracle band. The
  // bound checks key off the structure's own point semantics
  // (est >= theta); interval consistency with BurstyTimes is asserted
  // only where the decomposition is exact (kExactIntervals).
  for (const auto& [theta, tau] : plan.times) {
    for (EventId e = 0; e < k; ++e) {
      if (out->size() >= cap) return;
      internal::EventModel<View> model{&view, e};
      const auto intervals = BurstyTimes(model, theta, tau);
      const auto instants = internal::SampleInstants(
          oracle.stream(e).times(), view.Breakpoints(e), tau, intervals, 48);
      for (Timestamp t : instants) {
        const double exact =
            static_cast<double>(oracle.BurstinessAt(e, t, tau));
        const double bound = view.Bound(e, t, tau);
        const double est = view.Estimate(e, t, tau);
        const bool flagged = est >= theta;
        if (flagged && exact < theta - bound - kTol) {
          internal::AppendViolation(
              out, cap,
              label + " TIME e=" + std::to_string(e) + " theta=" +
                  std::to_string(theta) + " tau=" + std::to_string(tau) +
                  " t=" + std::to_string(t) +
                  ": est flags t but exact b=" + std::to_string(exact) +
                  " < theta-bound=" + std::to_string(theta - bound));
        }
        if (!flagged && exact >= theta + bound + kTol) {
          internal::AppendViolation(
              out, cap,
              label + " TIME e=" + std::to_string(e) + " theta=" +
                  std::to_string(theta) + " tau=" + std::to_string(tau) +
                  " t=" + std::to_string(t) + ": exact b=" +
                  std::to_string(exact) + " >= theta+bound=" +
                  std::to_string(theta + bound) + " but est misses t");
        }
        // Internal consistency: the interval decomposition must agree
        // with the structure's own point estimates everywhere.
        if (View::kExactIntervals && Covers(intervals, t) != flagged) {
          internal::AppendViolation(
              out, cap,
              label + " TIME e=" + std::to_string(e) + " t=" +
                  std::to_string(t) +
                  ": Covers=" + std::to_string(Covers(intervals, t)) +
                  " disagrees with est=" + std::to_string(est) +
                  " vs theta=" + std::to_string(theta));
        }
      }
      if (View::kExactIntervals) {
        // The oracle's own intervals, where the exact value clears the
        // bound, must be covered (checked at their begin instants).
        for (const auto& iv : oracle.BurstyTimes(e, theta, tau)) {
          const double exact =
              static_cast<double>(oracle.BurstinessAt(e, iv.begin, tau));
          if (exact >= theta + view.Bound(e, iv.begin, tau) + kTol &&
              !Covers(intervals, iv.begin)) {
            internal::AppendViolation(
                out, cap, label + " TIME e=" + std::to_string(e) +
                              ": exact interval begin=" +
                              std::to_string(iv.begin) + " uncovered");
          }
        }
      }
    }
  }

  // BURSTY EVENT: set containment under the computed bands.
  for (const auto& q : plan.events) {
    if (out->size() >= cap) return;
    std::vector<EventId> reported;
    for (EventId e = 0; e < k; ++e) {
      if (view.Estimate(e, q.t, q.tau) >= q.theta) reported.push_back(e);
    }
    std::vector<bool> in_reported(k, false);
    for (EventId e : reported) in_reported[e] = true;
    for (EventId e = 0; e < k; ++e) {
      const double exact =
          static_cast<double>(oracle.BurstinessAt(e, q.t, q.tau));
      const double bound = view.Bound(e, q.t, q.tau);
      if (in_reported[e] && exact < q.theta - bound - kTol) {
        internal::AppendViolation(
            out, cap,
            label + " EVENT t=" + std::to_string(q.t) + " theta=" +
                std::to_string(q.theta) + ": reported e=" +
                std::to_string(e) + " has exact b=" + std::to_string(exact) +
                " < theta-bound=" + std::to_string(q.theta - bound));
      }
      if (!in_reported[e] && exact >= q.theta + bound + kTol) {
        internal::AppendViolation(
            out, cap,
            label + " EVENT t=" + std::to_string(q.t) + " theta=" +
                std::to_string(q.theta) + ": missing e=" + std::to_string(e) +
                " with exact b=" + std::to_string(exact) +
                " >= theta+bound=" + std::to_string(q.theta + bound));
      }
    }
  }
}

}  // namespace test
}  // namespace bursthist

#endif  // BURSTHIST_TESTS_DIFFERENTIAL_DIFF_HARNESS_H_
