#include "differential/diff_harness.h"

#include <cassert>
#include <cstdio>
#include <sstream>

#include "util/random.h"

namespace bursthist {
namespace test {

namespace {

const char* kFamilyNames[] = {"uniform", "bursty", "staircase", "duplicates",
                              "out-of-order"};

}  // namespace

const char* FamilyName(StreamFamily family) {
  return kFamilyNames[static_cast<size_t>(family)];
}

std::string StreamSpec::ToString() const {
  std::ostringstream os;
  os << FamilyName(family) << " universe=" << universe << " n=" << n
     << " seed=" << seed << " lateness=" << max_lateness;
  return os.str();
}

bool StreamSpec::Parse(const std::string& text, StreamSpec* out) {
  std::istringstream is(text);
  std::string name;
  if (!(is >> name)) return false;
  bool found = false;
  for (size_t f = 0; f < 5; ++f) {
    if (name == kFamilyNames[f]) {
      out->family = static_cast<StreamFamily>(f);
      found = true;
      break;
    }
  }
  if (!found) return false;
  std::string token;
  while (is >> token) {
    const size_t eq = token.find('=');
    if (eq == std::string::npos) return false;
    const std::string key = token.substr(0, eq);
    char* end = nullptr;
    const std::string value = token.substr(eq + 1);
    const unsigned long long v = std::strtoull(value.c_str(), &end, 0);
    if (end == value.c_str() || *end != '\0') return false;
    if (key == "universe") {
      out->universe = static_cast<EventId>(v);
    } else if (key == "n") {
      out->n = static_cast<size_t>(v);
    } else if (key == "seed") {
      out->seed = v;
    } else if (key == "lateness") {
      out->max_lateness = static_cast<Timestamp>(v);
    } else {
      return false;
    }
  }
  return out->universe >= 1;
}

std::vector<EventRecord> GenerateArrivals(const StreamSpec& spec) {
  // Every record draws from the shared Rng strictly in record order, so
  // the first m records of spec{n} equal the records of spec{m} — the
  // prefix property MinimizeStructureFailure depends on.
  Rng rng(spec.seed);
  std::vector<EventRecord> out;
  out.reserve(spec.n);
  const EventId k = spec.universe;
  const Timestamp lateness =
      spec.family == StreamFamily::kOutOfOrder
          ? std::max<Timestamp>(1, spec.max_lateness)
          : 0;
  Timestamp base = lateness;  // keeps emitted times non-negative
  bool storm = false;
  size_t wall_left = 0;
  EventId wall_id = 0;
  for (size_t i = 0; i < spec.n; ++i) {
    EventId id = 0;
    Timestamp t = 0;
    switch (spec.family) {
      case StreamFamily::kUniform:
        base += 1 + static_cast<Timestamp>(rng.NextBelow(3));
        id = static_cast<EventId>(rng.NextBelow(k));
        t = base;
        break;
      case StreamFamily::kBursty:
        if (rng.NextDouble() < 0.06) storm = !storm;
        if (storm) {
          base += static_cast<Timestamp>(rng.NextBelow(2));
          // Storms concentrate on a small hot-id set.
          id = static_cast<EventId>(rng.NextBelow(std::max<EventId>(1, k / 4)));
        } else {
          base += 3 + static_cast<Timestamp>(rng.NextBelow(9));
          id = static_cast<EventId>(rng.NextBelow(k));
        }
        t = base;
        break;
      case StreamFamily::kStaircase:
        // Adversarial PLA shape: a vertical wall of same-timestamp
        // records for one id, then a long flat plateau.
        if (wall_left == 0) {
          base += 15 + static_cast<Timestamp>(rng.NextBelow(40));
          wall_left = 3 + static_cast<size_t>(rng.NextBelow(10));
          wall_id = static_cast<EventId>(rng.NextBelow(k));
        }
        --wall_left;
        id = wall_id;
        t = base;
        break;
      case StreamFamily::kDuplicates:
        if (rng.NextDouble() < 0.35) {
          base += 1 + static_cast<Timestamp>(rng.NextBelow(3));
        }
        // Skew ids toward 0 (min of two uniforms) so a few events
        // accumulate heavy duplicate batches.
        id = static_cast<EventId>(
            std::min(rng.NextBelow(k), rng.NextBelow(k)));
        t = base;
        break;
      case StreamFamily::kOutOfOrder:
        base += 1 + static_cast<Timestamp>(rng.NextBelow(4));
        id = static_cast<EventId>(rng.NextBelow(k));
        // Emit up to `lateness` behind the running max: always
        // acceptable under watermark - max_lateness admission.
        t = base - static_cast<Timestamp>(
                       rng.NextBelow(static_cast<uint64_t>(lateness) + 1));
        break;
    }
    out.push_back(EventRecord{id, t});
  }
  return out;
}

EventStream SortedStream(const std::vector<EventRecord>& arrivals) {
  std::vector<EventRecord> sorted = arrivals;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const EventRecord& a, const EventRecord& b) {
                     return a.time < b.time;
                   });
  return EventStream(std::move(sorted));
}

QueryPlan MakeQueryPlan(const ExactBurstStore& oracle, uint64_t seed) {
  QueryPlan plan;
  Timestamp tmin = 0, tmax = 0;
  bool any = false;
  for (EventId e = 0; e < oracle.universe_size(); ++e) {
    const auto& times = oracle.stream(e).times();
    if (times.empty()) continue;
    tmin = any ? std::min(tmin, times.front()) : times.front();
    tmax = any ? std::max(tmax, times.back()) : times.back();
    any = true;
  }
  if (!any) {
    tmin = 0;
    tmax = 8;
  }
  const Timestamp span = std::max<Timestamp>(1, tmax - tmin);

  const Timestamp taus[] = {1, std::max<Timestamp>(1, span / 16),
                            std::max<Timestamp>(2, span / 4), span + 5};
  Rng rng(seed ^ 0xd1f7ULL);
  std::vector<Timestamp> ts = {tmin - 3, tmin, tmin + span / 3,
                               tmin + 2 * span / 3, tmax, tmax + span / 4 + 2};
  for (int i = 0; i < 3; ++i) {
    ts.push_back(tmin + static_cast<Timestamp>(rng.NextBelow(
                            static_cast<uint64_t>(span) + span / 4 + 1)));
  }
  for (Timestamp tau : taus) {
    for (size_t i = 0; i < ts.size(); i += 2) {  // every other: 5 per tau
      plan.points.emplace_back(ts[i], tau);
    }
  }

  // Thetas straddling the exact burstiness range actually reached.
  double maxb = 1.0;
  for (const auto& [t, tau] : plan.points) {
    for (EventId e = 0; e < oracle.universe_size(); ++e) {
      maxb = std::max(
          maxb, static_cast<double>(oracle.BurstinessAt(e, t, tau)));
    }
  }
  const Timestamp mid_tau = std::max<Timestamp>(2, span / 8);
  plan.times.emplace_back(std::max(1.0, 0.3 * maxb), mid_tau);
  plan.times.emplace_back(std::max(1.0, 0.8 * maxb),
                          std::max<Timestamp>(1, span / 20));

  plan.events.push_back({tmax, std::max(1.0, 0.5 * maxb), mid_tau});
  plan.events.push_back({tmin + span / 2, 1.0, mid_tau});
  plan.events.push_back({tmax + 2 * mid_tau + 1, 1.0, mid_tau});
  return plan;
}

namespace internal {

void AppendViolation(Violations* out, size_t cap, std::string message) {
  if (out->size() < cap) out->push_back(std::move(message));
}

std::vector<Timestamp> SampleInstants(const std::vector<Timestamp>& exact_bps,
                                      const std::vector<Timestamp>& model_bps,
                                      Timestamp tau,
                                      const std::vector<TimeInterval>& ivs,
                                      size_t cap) {
  std::vector<Timestamp> cands;
  auto add_shifted = [&](const std::vector<Timestamp>& bps) {
    for (Timestamp x : bps) {
      cands.push_back(x);
      cands.push_back(x + tau);
      cands.push_back(x + 2 * tau);
    }
  };
  add_shifted(exact_bps);
  add_shifted(model_bps);
  for (const auto& iv : ivs) {
    cands.push_back(iv.begin - 1);
    cands.push_back(iv.begin);
    cands.push_back(iv.end);
    cands.push_back(iv.end + 1);
  }
  std::sort(cands.begin(), cands.end());
  cands.erase(std::unique(cands.begin(), cands.end()), cands.end());
  if (cands.size() <= cap) return cands;
  std::vector<Timestamp> out;
  out.reserve(cap);
  const double step = static_cast<double>(cands.size()) / cap;
  for (size_t i = 0; i < cap; ++i) {
    out.push_back(cands[static_cast<size_t>(i * step)]);
  }
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace internal

DiffConfig DiffConfig::Small() {
  DiffConfig c;
  c.pbe1.buffer_points = 24;
  c.pbe1.budget_points = 6;
  c.pbe2.gamma = 3.0;
  c.grid.depth = 3;
  c.grid.width = 5;
  c.grid.estimator = CmEstimator::kMedian;
  c.grid.identity_hash = false;
  return c;
}

Violations RunStructureDifferential(const StreamSpec& spec,
                                    const DiffConfig& config) {
  const auto arrivals = GenerateArrivals(spec);
  const EventStream stream = SortedStream(arrivals);

  ExactBurstStore oracle(spec.universe);
  const Status st = oracle.AppendStream(stream);
  Violations out;
  if (!st.ok()) {
    out.push_back("oracle rejected stream (" + spec.ToString() + ")");
    return out;
  }

  // Per-event PBE arrays (Section III deployment).
  std::vector<Pbe1> pbes1;
  std::vector<Pbe2> pbes2;
  for (EventId e = 0; e < spec.universe; ++e) {
    pbes1.emplace_back(config.pbe1);
    pbes2.emplace_back(config.pbe2);
  }
  // Grids: hash seed varies with the stream seed so the sweep also
  // sweeps hash functions (Lemma 5's probability space).
  CmPbeOptions grid_opts = config.grid;
  grid_opts.seed = config.grid.seed ^ (spec.seed * 0x9e3779b97f4a7c15ULL);
  CmPbe<Pbe1> grid1(grid_opts, config.pbe1);
  CmPbe<Pbe2> grid2(grid_opts, config.pbe2);

  for (const auto& r : stream.records()) {
    pbes1[r.id].Append(r.time);
    pbes2[r.id].Append(r.time);
    grid1.Append(r.id, r.time);
    grid2.Append(r.id, r.time);
  }
  for (auto& p : pbes1) p.Finalize();
  for (auto& p : pbes2) p.Finalize();
  grid1.Finalize();
  grid2.Finalize();

  const QueryPlan plan = MakeQueryPlan(oracle, spec.seed);
  const std::string tag = " (" + spec.ToString() + ")";

  CheckStructure(PbeArrayView<Pbe1>{&pbes1}, oracle, plan, "PBE1" + tag, &out,
                 config.max_violations);
  CheckStructure(PbeArrayView<Pbe2>{&pbes2}, oracle, plan, "PBE2" + tag, &out,
                 config.max_violations);
  GridOracleBounds<Pbe1> bounds1(grid1, oracle);
  GridOracleBounds<Pbe2> bounds2(grid2, oracle);
  CheckStructure(GridView<Pbe1>{&grid1, &bounds1, spec.universe}, oracle, plan,
                 "CM-PBE1" + tag, &out, config.max_violations);
  CheckStructure(GridView<Pbe2>{&grid2, &bounds2, spec.universe}, oracle, plan,
                 "CM-PBE2" + tag, &out, config.max_violations);
  return out;
}

StreamSpec MinimizeStructureFailure(StreamSpec spec, const DiffConfig& config) {
  // Binary search the shortest failing prefix. Generation is
  // prefix-stable, so shrinking n replays a prefix of the same stream;
  // failure need not be monotone in n, but the search still lands on
  // SOME minimal-ish failing prefix, which is what a human debugging
  // the violation wants.
  size_t lo = 1, hi = spec.n;
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    StreamSpec probe = spec;
    probe.n = mid;
    if (!RunStructureDifferential(probe, config).empty()) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  StreamSpec minimized = spec;
  minimized.n = hi;
  // Guard against non-monotonicity: fall back to the original n if the
  // search converged onto a passing prefix.
  if (RunStructureDifferential(minimized, config).empty()) return spec;
  return minimized;
}

std::string ReproCommand(const StreamSpec& spec) {
  return "BURSTHIST_DIFF_SPEC='" + spec.ToString() +
         "' ctest -R differential_test --output-on-failure";
}

}  // namespace test
}  // namespace bursthist
