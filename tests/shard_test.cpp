// Shard subsystem tests: router placement, the cluster topology
// manifest, ClusterEngine open/append/scrub mechanics, the SHARDSTATS
// wire verb end-to-end over TCP, and per-shard WAL-shipping
// replication with failover by promotion.
//
// Equivalence against a single-shard engine (the correctness story)
// lives in tests/differential/shard_equivalence_test.cpp; this file
// covers the machinery around it.

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/burst_engine.h"
#include "recovery/fault_env.h"
#include "replication/replica_engine.h"
#include "replication/wal_shipper.h"
#include "server/ingest_server.h"
#include "server/wire.h"
#include "shard/cluster_engine.h"
#include "shard/cluster_manifest.h"
#include "shard/cluster_replica.h"
#include "shard/shard_router.h"
#include "util/env.h"
#include "util/serialize.h"

namespace bursthist {
namespace shard {
namespace {

BurstEngineOptions<Pbe1> SmallOptions(Timestamp lateness = 0) {
  BurstEngineOptions<Pbe1> o;
  o.universe_size = 16;
  o.grid.depth = 2;
  o.grid.width = 8;
  o.cell.buffer_points = 32;
  o.cell.budget_points = 8;
  o.heavy_hitter_capacity = 4;
  o.max_lateness = lateness;
  return o;
}

DurabilityOptions TinySegments() {
  DurabilityOptions d;
  d.wal_segment_bytes = 1 << 10;
  return d;
}

std::vector<uint8_t> EngineBytes(const BurstEngine<Pbe1>& engine) {
  BinaryWriter w;
  engine.FinalizedClone().Serialize(&w);
  return w.bytes();
}

bool WaitUntil(const std::function<bool()>& done, int timeout_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (done()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return done();
}

// Generous wall-clock cap: CI runs these under sanitizers.
constexpr int kConvergeMs = 30000;

class ShardTest : public ::testing::Test {
 protected:
  void SetUp() override { env_ = Env::Default(); }

  void TearDown() override {
    for (auto it = dirs_.rbegin(); it != dirs_.rend(); ++it) RemoveTree(*it);
  }

  std::string NewDir(const std::string& tag) {
    std::string dir = testing::TempDir() + "/bursthist_shard_" + tag + "_" +
                      std::to_string(reinterpret_cast<uintptr_t>(this)) + "_" +
                      std::to_string(dirs_.size());
    EXPECT_TRUE(env_->CreateDirIfMissing(dir).ok());
    dirs_.push_back(dir);
    return dir;
  }

  // Cluster directories nest one level (dir/shard-NNN/files).
  void RemoveTree(const std::string& dir) {
    auto names = env_->ListDir(dir);
    if (names.ok()) {
      for (const auto& n : names.value()) {
        const std::string path = dir + "/" + n;
        auto nested = env_->ListDir(path);
        if (nested.ok()) {
          for (const auto& m : nested.value()) {
            (void)env_->DeleteFile(path + "/" + m);
          }
          ::rmdir(path.c_str());
        }
        (void)env_->DeleteFile(path);
      }
    }
    ::rmdir(dir.c_str());
  }

  Env* env_ = nullptr;
  std::vector<std::string> dirs_;
};

// ---------------------------------------------------------------------------
// Router
// ---------------------------------------------------------------------------

TEST(ShardRouterTest, PlacementIsDeterministicAndTotal) {
  const ShardRouter a(4);
  const ShardRouter b(4);
  std::vector<size_t> hits(4, 0);
  for (EventId e = 0; e < 1024; ++e) {
    const size_t s = a.ShardOf(e);
    ASSERT_LT(s, 4u);
    EXPECT_EQ(s, b.ShardOf(e)) << "placement must be a pure function";
    ++hits[s];
  }
  // Full-avalanche mix over 1024 ids: every shard must be populated
  // (a router that starves a shard would leave dead directories).
  for (size_t s = 0; s < hits.size(); ++s) {
    EXPECT_GT(hits[s], 0u) << "shard " << s << " never chosen";
  }
}

TEST(ShardRouterTest, SeedReHomesIds) {
  const ShardRouter a(8, /*seed=*/1);
  const ShardRouter b(8, /*seed=*/2);
  size_t moved = 0;
  for (EventId e = 0; e < 1024; ++e) {
    if (a.ShardOf(e) != b.ShardOf(e)) ++moved;
  }
  EXPECT_GT(moved, 0u) << "the seed must participate in placement";
}

TEST(ShardRouterTest, SingleShardShortCircuits) {
  const ShardRouter r(1);
  for (EventId e = 0; e < 64; ++e) EXPECT_EQ(r.ShardOf(e), 0u);
  EXPECT_EQ(ShardRouter(0).shards(), 1u) << "zero clamps to one";
}

TEST(ShardRouterTest, DirNamesAreZeroPadded) {
  EXPECT_EQ(ShardDirName(0), "shard-000");
  EXPECT_EQ(ShardDirName(7), "shard-007");
  EXPECT_EQ(ShardDirName(123), "shard-123");
}

// ---------------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------------

TEST_F(ShardTest, ManifestRoundTrips) {
  const std::string dir = NewDir("manifest");
  ClusterManifest m;
  m.shard_count = 5;
  m.hash_seed = 0xdeadbeefull;
  ASSERT_TRUE(WriteClusterManifest(env_, dir, m).ok());
  auto back = ReadClusterManifest(env_, dir);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value().shard_count, 5u);
  EXPECT_EQ(back.value().hash_seed, 0xdeadbeefull);
}

TEST_F(ShardTest, TopologyMismatchIsRefused) {
  const std::string dir = NewDir("mismatch");
  ASSERT_TRUE(EnsureClusterTopology(env_, dir, 4, 7).ok());
  // Idempotent on a matching reopen.
  EXPECT_TRUE(EnsureClusterTopology(env_, dir, 4, 7).ok());
  // Different shard count, different seed: both refused.
  Status count = EnsureClusterTopology(env_, dir, 2, 7);
  EXPECT_EQ(count.code(), StatusCode::kFailedPrecondition)
      << count.ToString();
  EXPECT_NE(count.message().find("topology mismatch"), std::string::npos);
  Status seed = EnsureClusterTopology(env_, dir, 4, 8);
  EXPECT_EQ(seed.code(), StatusCode::kFailedPrecondition) << seed.ToString();
}

TEST_F(ShardTest, CorruptManifestIsRefused) {
  const std::string dir = NewDir("badmanifest");
  ASSERT_TRUE(EnsureClusterTopology(env_, dir, 3, 1).ok());
  // Flip one payload bit: the CRC frame must catch it.
  ASSERT_TRUE(FlipBit(env_, ClusterManifestPath(dir), 12, 3).ok());
  auto back = ReadClusterManifest(env_, dir);
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), StatusCode::kCorruption)
      << back.status().ToString();
}

// ---------------------------------------------------------------------------
// ClusterEngine mechanics
// ---------------------------------------------------------------------------

TEST_F(ShardTest, OpenCreatesTopologyAndSurvivesReopen) {
  const std::string dir = NewDir("cluster");
  ClusterOptions copts;
  copts.shards = 3;
  {
    auto cluster = ClusterEngine<Pbe1>::Open(env_, dir, SmallOptions(), copts);
    ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
    for (size_t i = 0; i < 3; ++i) {
      EXPECT_TRUE(env_->FileExists(ClusterManifestPath(dir)));
      auto files = env_->ListDir(dir + "/" + ShardDirName(i));
      EXPECT_TRUE(files.ok()) << "missing " << ShardDirName(i);
    }
    for (EventId e = 0; e < 16; ++e) {
      ASSERT_TRUE(cluster.value()->Append(e, 10 + e).ok());
    }
    EXPECT_EQ(cluster.value()->TotalCount(), 16u);
    EXPECT_EQ(cluster.value()->Watermark(), 25);
    ASSERT_TRUE(cluster.value()->Checkpoint().ok());
  }
  // Matching reopen recovers everything.
  {
    auto cluster = ClusterEngine<Pbe1>::Open(env_, dir, SmallOptions(), copts);
    ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
    EXPECT_EQ(cluster.value()->TotalCount(), 16u);
    EXPECT_EQ(cluster.value()->Watermark(), 25);
    // Monotonicity resumes where the merged history ended.
    EXPECT_EQ(cluster.value()->Append(0, 5).code(), StatusCode::kOutOfRange);
    EXPECT_TRUE(cluster.value()->Append(0, 25).ok());
  }
  // Mismatched reopen is refused before any shard is touched.
  ClusterOptions wrong = copts;
  wrong.shards = 2;
  auto refused = ClusterEngine<Pbe1>::Open(env_, dir, SmallOptions(), wrong);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition)
      << refused.status().ToString();
}

TEST_F(ShardTest, OpenIsAllShardsOrFail) {
  const std::string dir = NewDir("allorfail");
  ClusterOptions copts;
  copts.shards = 2;
  // Squat on shard-001's directory slot with a plain file: that shard
  // cannot open, so the WHOLE cluster must refuse (a cluster missing
  // one shard would silently drop that shard's id subset from every
  // answer).
  {
    auto f = env_->NewWritableFile(dir + "/" + ShardDirName(1));
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE(f.value()->Close().ok());
  }
  auto cluster = ClusterEngine<Pbe1>::Open(env_, dir, SmallOptions(), copts);
  ASSERT_FALSE(cluster.ok());
  EXPECT_NE(cluster.status().message().find("shard-001"), std::string::npos)
      << cluster.status().ToString();
}

TEST_F(ShardTest, ValidationMatchesSingleEngineSemantics) {
  const std::string dir = NewDir("validate");
  ClusterOptions copts;
  copts.shards = 2;
  auto cluster = ClusterEngine<Pbe1>::Open(env_, dir, SmallOptions(), copts);
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();

  EXPECT_EQ(cluster.value()->Append(99, 1).code(),
            StatusCode::kInvalidArgument);

  // Batch validation stops at the deterministic global prefix: the
  // third record regresses, so exactly two records apply — regardless
  // of which shards they route to.
  std::vector<WeightedRecord> batch = {
      {1, 10, 1}, {2, 20, 1}, {3, 15, 1}, {4, 30, 1}};
  size_t applied = 0;
  Status st = cluster.value()->AppendBatch(batch, &applied);
  EXPECT_EQ(st.code(), StatusCode::kOutOfRange) << st.ToString();
  EXPECT_EQ(applied, 2u);
  EXPECT_EQ(cluster.value()->TotalCount(), 2u);
  EXPECT_EQ(cluster.value()->Watermark(), 20);

  // An invalid id stops the prefix the same way.
  std::vector<WeightedRecord> bad = {{5, 40, 1}, {400, 41, 1}, {6, 42, 1}};
  applied = 0;
  st = cluster.value()->AppendBatch(bad, &applied);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << st.ToString();
  EXPECT_EQ(applied, 1u);
  EXPECT_EQ(cluster.value()->TotalCount(), 3u);
}

TEST_F(ShardTest, LatenessWindowsArePerShard) {
  const std::string dir = NewDir("lateness");
  ClusterOptions copts;
  copts.shards = 2;
  auto cluster = ClusterEngine<Pbe1>::Open(env_, dir,
                                           SmallOptions(/*lateness=*/10),
                                           copts);
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();

  // Two ids homed on different shards.
  const ShardRouter& router = cluster.value()->router();
  EventId a = 0;
  EventId b = 0;
  for (EventId e = 0; e < 16; ++e) {
    if (router.ShardOf(e) == 0) a = e;
    if (router.ShardOf(e) == 1) b = e;
  }
  ASSERT_NE(router.ShardOf(a), router.ShardOf(b));

  // Shard a's watermark races ahead; shard b has seen nothing, so a
  // record far behind the CLUSTER watermark is still acceptable — the
  // lateness window is per shard (each shard's re-order buffer only
  // has to cover its own history).
  ASSERT_TRUE(cluster.value()->Append(a, 100).ok());
  EXPECT_TRUE(cluster.value()->Append(b, 50).ok());
  // But each shard enforces its own window: b's watermark is now 50,
  // so 30 < 50 - 10 is refused.
  EXPECT_EQ(cluster.value()->Append(b, 30).code(), StatusCode::kOutOfRange);
  EXPECT_TRUE(cluster.value()->Append(b, 45).ok());

  // Batch pre-validation applies the same per-shard windows.
  std::vector<WeightedRecord> batch = {
      {a, 101, 1}, {b, 49, 1}, {b, 20, 1}, {a, 102, 1}};
  size_t applied = 0;
  Status st = cluster.value()->AppendBatch(batch, &applied);
  EXPECT_EQ(st.code(), StatusCode::kOutOfRange) << st.ToString();
  EXPECT_EQ(applied, 2u);
}

TEST_F(ShardTest, ScrubMergesAndPrefixesShardReports) {
  const std::string dir = NewDir("scrub");
  ClusterOptions copts;
  copts.shards = 2;
  auto cluster = ClusterEngine<Pbe1>::Open(env_, dir, SmallOptions(), copts,
                                           TinySegments());
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  for (Timestamp t = 0; t < 400; ++t) {
    ASSERT_TRUE(cluster.value()->Append(t % 16, t).ok());
  }

  // A clean cluster scrub aggregates per-shard counts.
  ScrubOptions sopts;
  sopts.quarantine = false;
  auto clean = cluster.value()->Scrub(sopts);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  EXPECT_EQ(clean.value().corrupt_files, 0u);
  EXPECT_GT(clean.value().wal_records_checked, 0u);

  // Flip a bit in a CLOSED WAL segment of shard-000 (the live tail
  // segment is legitimately skipped by the scrubber).
  auto files = env_->ListDir(dir + "/" + ShardDirName(0));
  ASSERT_TRUE(files.ok());
  std::vector<std::string> wals;
  for (const auto& n : files.value()) {
    if (n.rfind("wal-", 0) == 0) wals.push_back(n);
  }
  std::sort(wals.begin(), wals.end());
  ASSERT_GE(wals.size(), 2u) << "workload too small to rotate segments";
  const std::string victim = wals.front();
  ASSERT_TRUE(
      FlipBit(env_, dir + "/" + ShardDirName(0) + "/" + victim, 40, 2).ok());

  auto dirty = cluster.value()->Scrub(sopts);
  ASSERT_TRUE(dirty.ok()) << dirty.status().ToString();
  EXPECT_EQ(dirty.value().corrupt_files, 1u);
  ASSERT_FALSE(dirty.value().issues.empty());
  EXPECT_EQ(dirty.value().issues[0].file, ShardDirName(0) + "/" + victim)
      << "issue files must carry their shard prefix";
}

TEST_F(ShardTest, ShardStatsAggregateToClusterTotals) {
  const std::string dir = NewDir("stats");
  ClusterOptions copts;
  copts.shards = 3;
  auto cluster = ClusterEngine<Pbe1>::Open(env_, dir, SmallOptions(), copts);
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  for (Timestamp t = 0; t < 200; ++t) {
    ASSERT_TRUE(cluster.value()->Append(t % 16, t).ok());
  }
  const auto stats = cluster.value()->ShardStats();
  ASSERT_EQ(stats.size(), 3u);
  Count total = 0;
  Timestamp watermark = 0;
  for (const auto& s : stats) {
    total += s.total;
    watermark = std::max(watermark, s.watermark);
    EXPECT_FALSE(s.has_lag) << "a leader reports no lag";
    EXPECT_GT(s.total, 0u) << "shard " << s.shard << " starved";
  }
  EXPECT_EQ(total, cluster.value()->TotalCount());
  EXPECT_EQ(watermark, cluster.value()->Watermark());
}

// ---------------------------------------------------------------------------
// SHARDSTATS over the wire
// ---------------------------------------------------------------------------

TEST_F(ShardTest, ShardStatsVerbEndToEnd) {
  const std::string dir = NewDir("serve");
  ClusterOptions copts;
  copts.shards = 2;
  auto cluster = ClusterEngine<Pbe1>::Open(env_, dir, SmallOptions(), copts);
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();

  server::IngestServer<ClusterEngine<Pbe1>> srv(cluster.value().get(),
                                                server::BurstServiceOptions());
  ASSERT_TRUE(srv.Start(server::TcpServerOptions()).ok());

  server::LineClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", srv.port()).ok());
  auto round_trip = [&client](const std::string& line) {
    EXPECT_TRUE(client.SendLine(line).ok());
    auto reply = client.ReadLine();
    EXPECT_TRUE(reply.ok()) << reply.status().ToString();
    return reply.ok() ? reply.value() : std::string();
  };

  EXPECT_EQ(round_trip("ADD 1 10"), "OK");
  EXPECT_EQ(round_trip("ADD 2 20"), "OK");

  const std::string reply = round_trip("SHARDSTATS");
  EXPECT_EQ(reply.compare(0, 20, "SHARDSTATS shards=2 "), 0) << reply;
  EXPECT_NE(reply.find("| shard=0 total="), std::string::npos) << reply;
  EXPECT_NE(reply.find("| shard=1 total="), std::string::npos) << reply;
  EXPECT_NE(reply.find("wal="), std::string::npos) << reply;
  EXPECT_EQ(reply.find("lag="), std::string::npos)
      << "leader stats must not fake a lag field: " << reply;

  // STATS grows a cluster-only shards= field.
  const std::string stats = round_trip("STATS");
  EXPECT_NE(stats.find("shards=2"), std::string::npos) << stats;

  srv.Stop();
}

TEST_F(ShardTest, ShardStatsVerbRefusedOnPlainEngine) {
  const std::string dir = NewDir("plainserve");
  auto durable = DurableBurstEngine<Pbe1>::Open(env_, dir, SmallOptions());
  ASSERT_TRUE(durable.ok()) << durable.status().ToString();

  server::IngestServer<DurableBurstEngine<Pbe1>> srv(
      durable.value().get(), server::BurstServiceOptions());
  ASSERT_TRUE(srv.Start(server::TcpServerOptions()).ok());

  server::LineClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", srv.port()).ok());
  ASSERT_TRUE(client.SendLine("SHARDSTATS").ok());
  auto reply = client.ReadLine();
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value().compare(0, 4, "ERR "), 0) << reply.value();
  EXPECT_NE(reply.value().find("FAILED_PRECONDITION"), std::string::npos)
      << reply.value();

  srv.Stop();
}

// ---------------------------------------------------------------------------
// Per-shard replication + promotion
// ---------------------------------------------------------------------------

repl::ReplicaOptions FastReplicaOptions(uint16_t port) {
  repl::ReplicaOptions r;
  r.leader_port = port;
  r.recv_timeout_ms = 10;
  r.dead_after_ms = 1000;
  r.backoff_initial_ms = 2;
  r.backoff_max_ms = 40;
  return r;
}

repl::WalShipperOptions FastShipperOptions(uint16_t port) {
  repl::WalShipperOptions s;
  s.port = port;
  s.poll_interval_ms = 2;
  s.heartbeat_interval_ms = 25;
  return s;
}

TEST_F(ShardTest, ClusterReplicationConvergesAndPromotes) {
  const std::string leader_dir = NewDir("repl_leader");
  const std::string follower_dir = NewDir("repl_follower");
  ClusterOptions copts;
  copts.shards = 2;
  // Serial ingest keeps every WAL mutation on the caller thread, so
  // one leader mutex covers the shipper state callbacks.
  copts.parallel_ingest = false;
  auto leader = ClusterEngine<Pbe1>::Open(env_, leader_dir, SmallOptions(),
                                          copts);
  ASSERT_TRUE(leader.ok()) << leader.status().ToString();
  std::mutex mu;

  // Shard i ships on base + i. The base port is ephemeral, so grabbing
  // base + 1 can race another process — retry with a fresh base.
  std::vector<std::unique_ptr<repl::WalShipper>> shippers;
  uint16_t base_port = 0;
  for (int attempt = 0; attempt < 10 && shippers.size() != copts.shards;
       ++attempt) {
    shippers.clear();
    base_port = 0;
    for (size_t i = 0; i < copts.shards; ++i) {
      auto shipper = std::make_unique<repl::WalShipper>();
      auto* sh = leader.value()->shard(i);
      Status st = shipper->Start(
          env_, leader_dir + "/" + ShardDirName(i),
          FastShipperOptions(base_port == 0
                                 ? 0
                                 : static_cast<uint16_t>(base_port + i)),
          [sh, &mu] {
            std::lock_guard<std::mutex> lock(mu);
            return repl::LeaderStatus{sh->wal_position(),
                                      sh->engine().Watermark()};
          });
      if (!st.ok()) break;
      if (i == 0) base_port = shipper->port();
      shippers.push_back(std::move(shipper));
    }
  }
  ASSERT_EQ(shippers.size(), copts.shards)
      << "could not claim two adjacent ports";

  constexpr size_t kRecords = 400;
  for (Timestamp t = 0; t < static_cast<Timestamp>(kRecords); ++t) {
    std::lock_guard<std::mutex> lock(mu);
    ASSERT_TRUE(leader.value()->Append(t % 16, t).ok());
  }

  auto replica = ClusterReplica<Pbe1>::Open(env_, follower_dir, SmallOptions(),
                                            DurabilityOptions(),
                                            FastReplicaOptions(base_port),
                                            copts);
  ASSERT_TRUE(replica.ok()) << replica.status().ToString();
  auto* rep = replica.value().get();
  ASSERT_TRUE(rep->Start().ok());

  ASSERT_TRUE(WaitUntil([rep] { return rep->applied_records() == kRecords; },
                        kConvergeMs))
      << "applied " << rep->applied_records() << "/" << kRecords
      << " last_error=" << rep->last_error().ToString();
  EXPECT_TRUE(rep->last_error().ok()) << rep->last_error().ToString();

  // Every follower shard must be byte-identical to its leader shard.
  for (size_t i = 0; i < copts.shards; ++i) {
    std::vector<uint8_t> want;
    {
      std::lock_guard<std::mutex> lock(mu);
      want = EngineBytes(leader.value()->shard(i)->engine());
    }
    std::vector<uint8_t> got;
    {
      std::lock_guard<std::mutex> lock(*rep->shard(i)->write_mu());
      got = EngineBytes(rep->shard(i)->durable()->engine());
    }
    EXPECT_EQ(got, want) << ShardDirName(i) << " diverged";
  }

  // Per-shard stats report the replica side of the story.
  const auto stats = rep->ShardStats();
  ASSERT_EQ(stats.size(), copts.shards);
  uint64_t applied = 0;
  for (const auto& s : stats) {
    EXPECT_TRUE(s.has_lag);
    applied += s.applied;
  }
  EXPECT_EQ(applied, kRecords);

  // Failover: the serving layer keys write refusal off follower(),
  // which stays true until EVERY shard has promoted.
  EXPECT_TRUE(rep->follower());
  ASSERT_TRUE(rep->Promote().ok());
  EXPECT_FALSE(rep->follower());
  EXPECT_EQ(rep->Promote().code(), StatusCode::kFailedPrecondition)
      << "double promote must be refused";
  EXPECT_TRUE(rep->Append(0, 1000).ok());
  EXPECT_EQ(rep->TotalCount(), kRecords + 1);

  rep->Stop();
  for (auto& s : shippers) s->Stop();
}

}  // namespace
}  // namespace shard
}  // namespace bursthist
