// Unit tests for the exact baseline store (Section II-B).

#include <gtest/gtest.h>

#include <vector>

#include "core/exact_store.h"

namespace bursthist {
namespace {

TEST(ExactBurstStoreTest, AppendAndPointQuery) {
  ExactBurstStore store(3);
  store.Append(0, 1);
  store.Append(1, 2);
  store.Append(0, 2);
  store.Append(0, 2);
  store.Append(2, 8);
  EXPECT_EQ(store.TotalCount(), 5u);
  EXPECT_EQ(store.CumulativeFrequency(0, 2), 3u);
  EXPECT_EQ(store.CumulativeFrequency(1, 1), 0u);
  EXPECT_EQ(store.BurstinessAt(0, 2, 1),
            store.stream(0).BurstinessAt(2, 1));
}

TEST(ExactBurstStoreTest, AppendStreamValidatesIds) {
  ExactBurstStore store(2);
  EventStream bad({{0, 1}, {5, 2}});
  EXPECT_EQ(store.AppendStream(bad).code(), StatusCode::kInvalidArgument);
}

TEST(ExactBurstStoreTest, BurstyEventsThreshold) {
  ExactBurstStore store(4);
  // Event 2 bursts at t in [10, 14]; others are flat.
  for (Timestamp t = 0; t < 30; t += 5) {
    store.Append(0, t);
    store.Append(1, t);
  }
  for (Timestamp t = 10; t < 15; ++t) {
    store.Append(2, t);
    store.Append(2, t);
  }
  auto bursty = store.BurstyEvents(14, 5.0, 5);
  EXPECT_EQ(bursty, (std::vector<EventId>{2}));
  // At a quiet instant nothing is bursty.
  EXPECT_TRUE(store.BurstyEvents(25, 5.0, 5).empty());
}

TEST(ExactBurstStoreTest, EmptyEventsNeverReported) {
  ExactBurstStore store(5);
  store.Append(1, 3);
  auto bursty = store.BurstyEvents(3, 0.5, 2);
  for (EventId e : bursty) EXPECT_EQ(e, 1u);
}

TEST(ExactBurstStoreTest, SizeBytesIsBaselineCost) {
  ExactBurstStore store(2);
  for (Timestamp t = 0; t < 100; ++t) store.Append(0, t);
  EXPECT_EQ(store.SizeBytes(), 100 * sizeof(Timestamp));
}

TEST(ExactEventModelTest, BreakpointsDedupe) {
  SingleEventStream s({1, 1, 2, 5, 5, 5});
  ExactEventModel model(&s);
  EXPECT_EQ(model.Breakpoints(), (std::vector<Timestamp>{1, 2, 5}));
}

TEST(ExactBurstStoreTest, BurstyTimesMatchesPointQueries) {
  ExactBurstStore store(1);
  for (Timestamp t = 0; t < 50; t += 10) store.Append(0, t);
  for (Timestamp t = 50; t < 60; ++t) store.Append(0, t);

  const Timestamp tau = 10;
  const double theta = 4.0;
  auto intervals = store.BurstyTimes(0, theta, tau);
  for (Timestamp t = 0; t < 100; ++t) {
    const bool in = Covers(intervals, t);
    const bool expect =
        static_cast<double>(store.BurstinessAt(0, t, tau)) >= theta;
    EXPECT_EQ(in, expect) << "t=" << t;
  }
}

}  // namespace
}  // namespace bursthist
