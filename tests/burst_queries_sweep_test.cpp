// Parameterized BURSTY TIME sweep: interval reporting must agree with
// dense point queries for every model type across (tau, theta) grids
// and stream shapes.

#include <gtest/gtest.h>

#include <string>

#include "core/burst_queries.h"
#include "core/exact_store.h"
#include "core/pbe1.h"
#include "core/pbe2.h"
#include "util/random.h"

namespace bursthist {
namespace {

struct QueryParam {
  Timestamp tau;
  double theta;
  uint64_t seed;
  bool spiky;  // stream shape
};

SingleEventStream MakeStream(const QueryParam& p) {
  Rng rng(p.seed);
  std::vector<Timestamp> times;
  Timestamp t = 0;
  for (int i = 0; i < 400; ++i) {
    if (p.spiky && (i / 60) % 2 == 1) {
      t += static_cast<Timestamp>(rng.NextBelow(2));
    } else {
      t += 1 + static_cast<Timestamp>(rng.NextBelow(12));
    }
    times.push_back(t);
  }
  return SingleEventStream(std::move(times));
}

class BurstyTimeSweep : public ::testing::TestWithParam<QueryParam> {};

template <typename Model>
void CheckAgainstDense(const Model& model, Timestamp tau, double theta,
                       Timestamp hi) {
  auto intervals = BurstyTimes(model, theta, tau);
  // Intervals are sorted, disjoint, non-adjacent.
  for (size_t i = 0; i < intervals.size(); ++i) {
    EXPECT_LE(intervals[i].begin, intervals[i].end);
    if (i > 0) {
      EXPECT_GT(intervals[i].begin, intervals[i - 1].end + 1);
    }
  }
  for (Timestamp t = 0; t <= hi; ++t) {
    EXPECT_EQ(Covers(intervals, t),
              model.EstimateBurstiness(t, tau) >= theta)
        << "t=" << t << " tau=" << tau << " theta=" << theta;
  }
}

TEST_P(BurstyTimeSweep, ExactModelAgrees) {
  const auto p = GetParam();
  auto s = MakeStream(p);
  ExactEventModel model(&s);
  CheckAgainstDense(model, p.tau, p.theta, s.times().back() + 2 * p.tau + 2);
}

TEST_P(BurstyTimeSweep, Pbe1Agrees) {
  const auto p = GetParam();
  auto s = MakeStream(p);
  Pbe1Options o;
  o.buffer_points = 64;
  o.budget_points = 16;
  Pbe1 pbe(o);
  for (Timestamp t : s.times()) pbe.Append(t);
  pbe.Finalize();
  CheckAgainstDense(pbe, p.tau, p.theta, s.times().back() + 2 * p.tau + 2);
}

TEST_P(BurstyTimeSweep, Pbe2Agrees) {
  const auto p = GetParam();
  auto s = MakeStream(p);
  Pbe2Options o;
  o.gamma = 3.0;
  Pbe2 pbe(o);
  for (Timestamp t : s.times()) pbe.Append(t);
  pbe.Finalize();
  CheckAgainstDense(pbe, p.tau, p.theta, s.times().back() + 2 * p.tau + 2);
}

std::vector<QueryParam> Params() {
  return {
      {1, 1.0, 21, true},    {1, 1.0, 22, false},
      {5, 2.0, 23, true},    {5, 8.0, 24, true},
      {25, 4.0, 25, true},   {25, 20.0, 26, false},
      {100, 10.0, 27, true}, {100, 0.5, 28, true},
      {400, 5.0, 29, true},  {7, 3.5, 30, false},
  };
}

std::string Name(const ::testing::TestParamInfo<QueryParam>& info) {
  return "tau" + std::to_string(info.param.tau) + "_idx" +
         std::to_string(info.index);
}

INSTANTIATE_TEST_SUITE_P(Grid, BurstyTimeSweep, ::testing::ValuesIn(Params()),
                         Name);

}  // namespace
}  // namespace bursthist
