// Unit tests for the snapshot-based persistent Count-Min baseline.

#include <gtest/gtest.h>

#include "sketch/snapshot_cm.h"
#include "util/random.h"

namespace bursthist {
namespace {

SnapshotCmOptions WideOptions(Timestamp interval) {
  SnapshotCmOptions o;
  o.depth = 4;
  o.width = 1024;  // collisions negligible for tiny key sets
  o.snapshot_interval = interval;
  return o;
}

TEST(SnapshotCmTest, ExactAtCheckpointGranularity) {
  SnapshotCmSketch cm(WideOptions(10));
  // Event 5: one arrival at t = 3, 13, 23, ..., 93.
  for (Timestamp t = 3; t < 100; t += 10) cm.Append(5, t);
  cm.Finalize();
  // At a checkpoint boundary the count is exact.
  EXPECT_DOUBLE_EQ(cm.EstimateCumulative(5, 9), 1.0);
  EXPECT_DOUBLE_EQ(cm.EstimateCumulative(5, 59), 6.0);
  EXPECT_DOUBLE_EQ(cm.EstimateCumulative(5, 1000), 10.0);
}

TEST(SnapshotCmTest, GranularityAliasing) {
  SnapshotCmSketch cm(WideOptions(100));
  for (Timestamp t = 0; t < 1000; ++t) cm.Append(1, t);
  cm.Finalize();
  // Within one interval the estimate is stale: t=150 (true count 151)
  // returns the t=99 checkpoint; t=199 happens to be a checkpoint and
  // is exact; t=200 (true 201) is stale by one again.
  EXPECT_DOUBLE_EQ(cm.EstimateCumulative(1, 150), 100.0);
  EXPECT_DOUBLE_EQ(cm.EstimateCumulative(1, 199), 200.0);
  EXPECT_DOUBLE_EQ(cm.EstimateCumulative(1, 200), 200.0);
  // tau below the interval aliases burstiness to zero.
  EXPECT_DOUBLE_EQ(cm.EstimateBurstiness(1, 150, 10), 0.0);
}

TEST(SnapshotCmTest, NeverUnderestimatesAtBoundaries) {
  SnapshotCmSketch cm(WideOptions(50));
  Rng rng(3);
  std::vector<std::pair<EventId, Timestamp>> arrivals;
  Timestamp t = 0;
  for (int i = 0; i < 3000; ++i) {
    t += static_cast<Timestamp>(rng.NextBelow(3));
    arrivals.emplace_back(static_cast<EventId>(rng.NextBelow(20)), t);
  }
  std::vector<std::vector<Timestamp>> exact(20);
  for (auto& [e, at] : arrivals) {
    exact[e].push_back(at);
  }
  for (auto& [e, at] : arrivals) cm.Append(e, at);
  cm.Finalize();
  for (EventId e = 0; e < 20; ++e) {
    for (Timestamp q = 49; q <= t; q += 50) {
      const auto truth = static_cast<double>(
          std::upper_bound(exact[e].begin(), exact[e].end(), q) -
          exact[e].begin());
      EXPECT_GE(cm.EstimateCumulative(e, q), truth) << "e=" << e << " q=" << q;
    }
  }
}

TEST(SnapshotCmTest, DeadPeriodsShareCheckpoints) {
  SnapshotCmSketch cm(WideOptions(10));
  cm.Append(1, 5);
  cm.Append(1, 905);  // 90 empty intervals in between
  cm.Finalize();
  // Identical consecutive checkpoints are deduplicated.
  EXPECT_LE(cm.snapshot_count(), 4u);
  EXPECT_DOUBLE_EQ(cm.EstimateCumulative(1, 500), 1.0);
  EXPECT_DOUBLE_EQ(cm.EstimateCumulative(1, 905), 2.0);
}

TEST(SnapshotCmTest, SpaceGrowsWithResolution) {
  auto run = [](Timestamp interval) {
    SnapshotCmSketch cm(WideOptions(interval));
    Rng rng(7);
    Timestamp t = 0;
    for (int i = 0; i < 5000; ++i) {
      t += static_cast<Timestamp>(rng.NextBelow(4));
      cm.Append(static_cast<EventId>(rng.NextBelow(50)), t);
    }
    cm.Finalize();
    return cm.SizeBytes();
  };
  EXPECT_GT(run(10), run(100));
  EXPECT_GT(run(100), run(1000));
}

TEST(SnapshotCmTest, SerializationRoundTrip) {
  SnapshotCmSketch cm(WideOptions(25));
  Rng rng(9);
  Timestamp t = 0;
  for (int i = 0; i < 1000; ++i) {
    t += static_cast<Timestamp>(rng.NextBelow(3));
    cm.Append(static_cast<EventId>(rng.NextBelow(10)), t);
  }
  cm.Finalize();

  BinaryWriter w;
  cm.Serialize(&w);
  SnapshotCmSketch back(WideOptions(25));
  BinaryReader r(w.bytes());
  ASSERT_TRUE(back.Deserialize(&r).ok());
  EXPECT_EQ(back.snapshot_count(), cm.snapshot_count());
  for (EventId e = 0; e < 10; ++e) {
    for (Timestamp q = 0; q <= t; q += 13) {
      EXPECT_DOUBLE_EQ(back.EstimateCumulative(e, q),
                       cm.EstimateCumulative(e, q));
    }
  }
}

TEST(SnapshotCmTest, CorruptPayloadRejected) {
  BinaryWriter w;
  w.Put<uint32_t>(0x1111);
  SnapshotCmSketch cm(WideOptions(10));
  BinaryReader r(w.bytes());
  EXPECT_FALSE(cm.Deserialize(&r).ok());
}

}  // namespace
}  // namespace bursthist
