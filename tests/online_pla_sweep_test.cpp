// Parameterized online-PLA sweep: the band invariant and segment
// bookkeeping across (gamma, polygon cap, stream shape) combinations.

#include <gtest/gtest.h>

#include <string>

#include "pla/online_pla.h"
#include "util/random.h"

namespace bursthist {
namespace {

struct PlaParam {
  double gamma;
  size_t max_vertices;
  int shape;  // 0 steady, 1 bursty, 2 steppy, 3 dense
  uint64_t seed;
};

FrequencyCurve MakeCurve(const PlaParam& p) {
  Rng rng(p.seed);
  std::vector<CurvePoint> pts;
  Timestamp t = 0;
  Count c = 0;
  for (int i = 0; i < 250; ++i) {
    switch (p.shape) {
      case 0:
        t += 3;
        c += 2;
        break;
      case 1: {
        const bool storm = (i / 40) % 2 == 1;
        t += storm ? 1 : 5 + static_cast<Timestamp>(rng.NextBelow(20));
        c += storm ? 5 + static_cast<Count>(rng.NextBelow(10)) : 1;
        break;
      }
      case 2:
        t += 1 + static_cast<Timestamp>(rng.NextBelow(4));
        c += (i % 50 == 0) ? 200 : 1;  // rare huge jumps
        break;
      default:
        t += 1;
        c += 1 + static_cast<Count>(rng.NextBelow(3));
        break;
    }
    pts.push_back(CurvePoint{t, c});
  }
  return FrequencyCurve(std::move(pts));
}

class OnlinePlaSweep : public ::testing::TestWithParam<PlaParam> {};

TEST_P(OnlinePlaSweep, BandInvariantHolds) {
  const auto p = GetParam();
  FrequencyCurve curve = MakeCurve(p);
  LinearModel model = BuildPla(curve, p.gamma, p.max_vertices);
  const Timestamp last = curve.points().back().time;
  for (Timestamp t = curve.points().front().time; t <= last + 2; ++t) {
    const double f = static_cast<double>(curve.Evaluate(t));
    const double est = model.Evaluate(t);
    EXPECT_LE(est, f + 1e-6) << "t=" << t;
    EXPECT_GE(est, f - p.gamma - 1e-6) << "t=" << t;
  }
}

TEST_P(OnlinePlaSweep, SegmentsWellFormed) {
  const auto p = GetParam();
  FrequencyCurve curve = MakeCurve(p);
  LinearModel model = BuildPla(curve, p.gamma, p.max_vertices);
  ASSERT_FALSE(model.empty());
  const auto& segs = model.segments();
  for (size_t i = 0; i < segs.size(); ++i) {
    EXPECT_LE(segs[i].start, segs[i].last);
    if (i > 0) {
      EXPECT_GT(segs[i].start, segs[i - 1].last);
    }
  }
  // Coverage: first segment starts at (or before) the first augmented
  // point; last segment reaches the final corner.
  EXPECT_LE(segs.front().start, curve.points().front().time);
  EXPECT_EQ(segs.back().last, curve.points().back().time);
}

TEST_P(OnlinePlaSweep, SerializationStable)  {
  const auto p = GetParam();
  FrequencyCurve curve = MakeCurve(p);
  LinearModel model = BuildPla(curve, p.gamma, p.max_vertices);
  BinaryWriter w;
  model.Serialize(&w);
  LinearModel back;
  BinaryReader r(w.bytes());
  ASSERT_TRUE(back.Deserialize(&r).ok());
  ASSERT_EQ(back.size(), model.size());
  const Timestamp last = curve.points().back().time;
  for (Timestamp t = 0; t <= last; t += 7) {
    EXPECT_DOUBLE_EQ(back.Evaluate(t), model.Evaluate(t));
  }
}

std::vector<PlaParam> Params() {
  std::vector<PlaParam> out;
  uint64_t seed = 41;
  for (double gamma : {0.0, 1.0, 8.0, 64.0}) {
    for (size_t cap : {size_t{0}, size_t{6}}) {
      for (int shape : {0, 1, 2, 3}) {
        out.push_back({gamma, cap, shape, seed++});
      }
    }
  }
  return out;
}

std::string Name(const ::testing::TestParamInfo<PlaParam>& info) {
  const char* shapes[] = {"steady", "bursty", "steppy", "dense"};
  return "g" + std::to_string(static_cast<int>(info.param.gamma)) + "_cap" +
         std::to_string(info.param.max_vertices) + "_" +
         shapes[info.param.shape];
}

INSTANTIATE_TEST_SUITE_P(Grid, OnlinePlaSweep, ::testing::ValuesIn(Params()),
                         Name);

}  // namespace
}  // namespace bursthist
