// Fuzzes DyadicBurstIndex<Pbe1>::Deserialize (DYAD-framed blobs)
// against a universe-8 index (the shape the corpus seeds target; the
// deserializer must reject any blob whose universe/levels disagree).

#include "core/dyadic_index.h"
#include "fuzz_driver.h"
#include "util/serialize.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace bursthist;
  CmPbeOptions grid_opts;
  grid_opts.depth = 2;
  grid_opts.width = 4;
  Pbe1Options cell;
  cell.buffer_points = 16;
  cell.budget_points = 4;
  DyadicBurstIndex<Pbe1> idx(8, grid_opts, cell);
  BinaryReader r(data, size);
  if (!idx.Deserialize(&r).ok()) return 0;

  if (idx.level(0).finalized()) {
    (void)idx.EstimateBurstiness(3, 40, 5);
    (void)idx.BurstyEvents(40, 1.5, 5);
    (void)idx.TopKBurstyEvents(40, 3, 5);
  }

  BinaryWriter w1;
  idx.Serialize(&w1);
  DyadicBurstIndex<Pbe1> idx2(8, grid_opts, cell);
  BinaryReader r2(w1.bytes());
  BURSTHIST_FUZZ_REQUIRE(idx2.Deserialize(&r2).ok());
  BinaryWriter w2;
  idx2.Serialize(&w2);
  BURSTHIST_FUZZ_REQUIRE(w1.bytes() == w2.bytes());
  return 0;
}
