// Fuzzes Pbe1::Deserialize (PBE1-framed blobs): clean Status or a
// valid object whose queries work and whose re-serialization is a
// byte-for-byte fixpoint.

#include "core/pbe1.h"
#include "fuzz_driver.h"
#include "util/serialize.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace bursthist;
  Pbe1 p;
  BinaryReader r(data, size);
  if (!p.Deserialize(&r).ok()) return 0;

  if (p.finalized()) {
    (void)p.EstimateCumulative(-100);
    (void)p.EstimateCumulative(0);
    (void)p.EstimateCumulative(1 << 20);
    (void)p.EstimateBurstiness(1000, 7);
    (void)p.Breakpoints();
    (void)p.MaxBufferAreaError();
    (void)p.TotalAreaError();
  }

  // serialize(deserialize(x)) must be a fixpoint.
  BinaryWriter w1;
  p.Serialize(&w1);
  Pbe1 q;
  BinaryReader r2(w1.bytes());
  BURSTHIST_FUZZ_REQUIRE(q.Deserialize(&r2).ok());
  BinaryWriter w2;
  q.Serialize(&w2);
  BURSTHIST_FUZZ_REQUIRE(w1.bytes() == w2.bytes());
  return 0;
}
