// Fuzzes the batched wire-parser path the ingest server runs: a raw
// byte stream is split into recv-sized chunks at fuzz-chosen
// boundaries, reassembled by LineBuffer, parsed by ParseRequest, and
// every run of consecutive ADD lines is applied as ONE AppendBatch
// (with the server's resubmit-past-the-failure loop) against a second
// engine fed per-record. Three invariants:
//
//  1. Line assembly is split-invariant: any chunking of the same
//     bytes yields the same lines and the same terminal status.
//  2. ParseRequest never crashes: clean Status or a valid request.
//  3. Batch apply == serial apply: per-record statuses match and the
//     finalized engines serialize to byte-identical state, exactly as
//     the batch-identity test tier pins for well-formed streams —
//     here under arbitrary adversarial input.
//
// Input layout: data[0] & 0x0F = number of split points, that many
// bytes of split positions (scaled over the payload), rest = payload.

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "core/burst_engine.h"
#include "core/pbe1.h"
#include "fuzz_driver.h"
#include "server/wire.h"
#include "util/serialize.h"

namespace {

constexpr size_t kMaxLineBytes = 512;

bursthist::BurstEngineOptions<bursthist::Pbe1> EngineOptions() {
  bursthist::BurstEngineOptions<bursthist::Pbe1> o;
  o.universe_size = 8;
  o.grid.depth = 2;
  o.grid.width = 4;
  o.cell.buffer_points = 16;
  o.cell.budget_points = 8;
  o.heavy_hitter_capacity = 4;
  return o;
}

std::vector<uint8_t> Bytes(const bursthist::BurstEngine<bursthist::Pbe1>& e) {
  bursthist::BinaryWriter w;
  e.Serialize(&w);
  return w.TakeBytes();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace bursthist;
  using server::LineBuffer;
  using server::ParseRequest;
  using server::Request;
  using server::RequestType;
  if (size < 1) return 0;

  const size_t n_splits = data[0] & 0x0F;
  if (size < 1 + n_splits) return 0;
  const char* payload = reinterpret_cast<const char*>(data + 1 + n_splits);
  const size_t payload_size = size - 1 - n_splits;

  // Chunk boundaries: each split byte picks a position in the payload.
  std::vector<size_t> cuts;
  cuts.reserve(n_splits + 2);
  cuts.push_back(0);
  for (size_t i = 0; i < n_splits; ++i) {
    if (payload_size > 0) cuts.push_back(data[1 + i] % payload_size);
  }
  cuts.push_back(payload_size);
  std::sort(cuts.begin(), cuts.end());

  // 1. Split-invariant line assembly: chunked feed vs one-shot feed.
  //    The server closes the connection on a Feed error, so both
  //    modes stop at the first failure.
  std::vector<std::string> chunked_lines;
  Status chunked_status = Status::OK();
  {
    LineBuffer buffer(kMaxLineBytes);
    for (size_t i = 0; i + 1 < cuts.size(); ++i) {
      chunked_status = buffer.Feed(payload + cuts[i], cuts[i + 1] - cuts[i],
                                   &chunked_lines);
      if (!chunked_status.ok()) break;
    }
  }
  std::vector<std::string> whole_lines;
  LineBuffer whole_buffer(kMaxLineBytes);
  const Status whole_status =
      whole_buffer.Feed(payload, payload_size, &whole_lines);
  BURSTHIST_FUZZ_REQUIRE(chunked_status.code() == whole_status.code());
  BURSTHIST_FUZZ_REQUIRE(chunked_lines == whole_lines);

  // 2. Parse every assembled line; collect the ADD records the
  //    batched dispatcher would coalesce (runs end at any non-ADD).
  std::vector<std::vector<WeightedRecord>> runs;
  std::vector<WeightedRecord> run;
  for (const std::string& line : whole_lines) {
    if (line.empty()) continue;  // ServeConnection drops empty lines
    auto parsed = ParseRequest(line);
    if (!parsed.ok() || parsed.value().type != RequestType::kAdd) {
      if (!run.empty()) runs.push_back(std::move(run));
      run.clear();
      continue;
    }
    const Request& req = parsed.value();
    run.push_back(WeightedRecord{req.e, req.t, req.count});
  }
  if (!run.empty()) runs.push_back(std::move(run));

  // 3. Batch apply (the server's resubmit loop) vs serial apply must
  //    agree on every per-record status and on final engine bytes.
  BurstEngine<Pbe1> batched(EngineOptions());
  BurstEngine<Pbe1> serial(EngineOptions());
  for (const auto& records : runs) {
    std::vector<StatusCode> batch_codes(records.size(), StatusCode::kOk);
    const std::span<const WeightedRecord> span(records);
    size_t begin = 0;
    while (begin < span.size()) {
      size_t applied = 0;
      const Status st = batched.AppendBatch(span.subspan(begin), &applied);
      begin += applied;
      if (st.ok()) break;
      BURSTHIST_FUZZ_REQUIRE(begin < span.size());
      batch_codes[begin] = st.code();
      ++begin;
    }
    for (size_t i = 0; i < records.size(); ++i) {
      const WeightedRecord& r = records[i];
      const Status st = serial.Append(r.id, r.time, r.count);
      BURSTHIST_FUZZ_REQUIRE(st.code() == batch_codes[i]);
    }
  }
  BURSTHIST_FUZZ_REQUIRE(Bytes(batched) == Bytes(serial));
  return 0;
}
