// Fuzzes CmPbe<Pbe1>::Deserialize (CMPB-framed blobs): clean Status or
// a valid grid. Notably guards the allocation path — depth/width are
// attacker-controlled and must be rejected before any cell reserve.

#include "core/cm_pbe.h"
#include "fuzz_driver.h"
#include "util/serialize.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace bursthist;
  CmPbeOptions grid_opts;
  grid_opts.depth = 2;
  grid_opts.width = 3;
  Pbe1Options cell;
  cell.buffer_points = 16;
  cell.budget_points = 4;
  CmPbe<Pbe1> g(grid_opts, cell);
  BinaryReader r(data, size);
  if (!g.Deserialize(&r).ok()) return 0;

  if (g.finalized()) {
    for (EventId e = 0; e < 4; ++e) {
      (void)g.EstimateCumulative(e, 50);
      (void)g.EstimateBurstiness(e, 50, 7);
      (void)g.EstimateFrequency(e, 10, 60);
      (void)g.Breakpoints(e);
    }
  }

  BinaryWriter w1;
  g.Serialize(&w1);
  CmPbe<Pbe1> h(grid_opts, cell);
  BinaryReader r2(w1.bytes());
  BURSTHIST_FUZZ_REQUIRE(h.Deserialize(&r2).ok());
  BinaryWriter w2;
  h.Serialize(&w2);
  BURSTHIST_FUZZ_REQUIRE(w1.bytes() == w2.bytes());
  return 0;
}
