// Fuzzes SketchStore loading: arbitrary bytes written as a named
// sketch file must load with a clean Status or a valid engine, and —
// critically — must never drive the engine constructor into a huge
// allocation from a hostile shape header before deserialization gets
// a chance to reject the payload.

#include "core/sketch_store.h"
#include "fuzz_driver.h"
#include "util/env.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace bursthist;
  Env* env = Env::Default();
  const std::string dir = bursthist_fuzz::ScratchDir() + "_sketch_store";
  if (!env->CreateDirIfMissing(dir).ok()) return 0;
  {
    auto file = env->NewWritableFile(dir + "/input.sketch");
    if (!file.ok()) return 0;
    if (size > 0 && !file.value()->Append(data, size).ok()) return 0;
    if (!file.value()->Close().ok()) return 0;
  }
  SketchStore store(dir);
  auto e1 = store.LoadEngine1("input");
  if (e1.ok()) {
    (void)e1.value().PointQuery(0, 100, 7);
    (void)e1.value().CumulativeQuery(0, 50);
  }
  auto e2 = store.LoadEngine2("input");
  if (e2.ok()) {
    (void)e2.value().PointQuery(0, 100, 7);
  }
  return 0;
}
