// Fuzzes BurstEngine<Pbe1>::Deserialize (BENG-framed blobs): clean
// Status or a valid engine whose queries and re-serialization work.

#include "core/burst_engine.h"
#include "fuzz_driver.h"
#include "util/serialize.h"

namespace {

bursthist::BurstEngineOptions<bursthist::Pbe1> EngineOptions() {
  bursthist::BurstEngineOptions<bursthist::Pbe1> o;
  o.universe_size = 8;
  o.grid.depth = 2;
  o.grid.width = 4;
  o.cell.buffer_points = 16;
  o.cell.budget_points = 4;
  o.heavy_hitter_capacity = 4;
  o.max_lateness = 4;
  return o;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace bursthist;
  BurstEngine<Pbe1> engine(EngineOptions());
  BinaryReader r(data, size);
  if (!engine.Deserialize(&r).ok()) return 0;

  if (engine.finalized()) {
    for (EventId e = 0; e < engine.universe_size(); ++e) {
      (void)engine.PointQuery(e, 40, 5);
      (void)engine.CumulativeQuery(e, 40);
    }
    (void)engine.BurstyEventQuery(40, 1.5, 5);
    (void)engine.BurstyTimeQuery(2, 1.5, 5);
    (void)engine.TopKBurstyEvents(40, 3, 5);
    (void)engine.HeavyHitters(4);
  }

  BinaryWriter w1;
  engine.Serialize(&w1);
  BurstEngine<Pbe1> engine2(EngineOptions());
  BinaryReader r2(w1.bytes());
  BURSTHIST_FUZZ_REQUIRE(engine2.Deserialize(&r2).ok());
  BinaryWriter w2;
  engine2.Serialize(&w2);
  BURSTHIST_FUZZ_REQUIRE(w1.bytes() == w2.bytes());
  return 0;
}
