// Regenerates the checked-in fuzz seed corpus (tests/fuzz/corpus/).
//
//   make_corpus <corpus-root>
//
// One subdirectory per fuzz target, seeded with valid artifacts (so
// coverage-guided fuzzing starts past the magic/CRC cliff) plus a few
// near-valid mutants (truncated / bit-flipped) that exercise the
// rejection paths the plain-build corpus regression must keep clean.

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <initializer_list>
#include <string>
#include <vector>

#include "core/burst_engine.h"
#include "core/cm_pbe.h"
#include "core/sketch_store.h"
#include "core/dyadic_index.h"
#include "core/pbe1.h"
#include "core/pbe2.h"
#include "recovery/durable_engine.h"
#include "recovery/wal.h"
#include "util/env.h"
#include "util/serialize.h"

namespace bursthist {
namespace {

Env* env = nullptr;

void WriteCorpusFile(const std::string& dir, const std::string& name,
                     const std::vector<uint8_t>& bytes) {
  auto file = env->NewWritableFile(dir + "/" + name);
  if (!file.ok() || !file.value()->Append(bytes).ok() ||
      !file.value()->Close().ok()) {
    std::fprintf(stderr, "failed writing %s/%s\n", dir.c_str(), name.c_str());
    std::exit(1);
  }
  std::printf("wrote %s/%s (%zu bytes)\n", dir.c_str(), name.c_str(),
              bytes.size());
}

std::vector<uint8_t> Truncated(const std::vector<uint8_t>& bytes, size_t cut) {
  std::vector<uint8_t> out = bytes;
  out.resize(out.size() > cut ? out.size() - cut : 0);
  return out;
}

std::vector<uint8_t> BitFlipped(const std::vector<uint8_t>& bytes,
                                size_t index) {
  std::vector<uint8_t> out = bytes;
  if (!out.empty()) out[index % out.size()] ^= 0x40;
  return out;
}

// The small mixed stream every structure seed ingests.
std::vector<EventRecord> SeedRecords() {
  return {{0, 5},  {1, 5},  {2, 6},  {0, 8},  {3, 8},  {0, 9},
          {4, 12}, {0, 12}, {5, 15}, {6, 15}, {0, 16}, {7, 21}};
}

std::string Subdir(const std::string& root, const std::string& name) {
  const std::string dir = root + "/" + name;
  if (!env->CreateDirIfMissing(dir).ok()) {
    std::fprintf(stderr, "cannot create %s\n", dir.c_str());
    std::exit(1);
  }
  return dir;
}

void EmitVariants(const std::string& dir, const std::string& stem,
                  const std::vector<uint8_t>& valid) {
  WriteCorpusFile(dir, stem + ".bin", valid);
  WriteCorpusFile(dir, stem + "_truncated.bin", Truncated(valid, 3));
  WriteCorpusFile(dir, stem + "_bitflip.bin",
                  BitFlipped(valid, valid.size() / 2));
}

}  // namespace
}  // namespace bursthist

int main(int argc, char** argv) {
  using namespace bursthist;
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <corpus-root>\n", argv[0]);
    return 1;
  }
  env = Env::Default();
  const std::string root = argv[1];
  if (!env->CreateDirIfMissing(root).ok()) {
    std::fprintf(stderr, "cannot create %s\n", root.c_str());
    return 1;
  }
  const auto records = SeedRecords();

  // PBE-1 / PBE-2: finalized and live forms.
  {
    Pbe1Options o1;
    o1.buffer_points = 8;
    o1.budget_points = 4;
    Pbe1 live(o1);
    for (const auto& r : records) live.Append(r.time);
    BinaryWriter wl;
    live.Serialize(&wl);
    Pbe1 fin = live;
    fin.Finalize();
    BinaryWriter wf;
    fin.Serialize(&wf);
    const std::string dir = Subdir(root, "pbe1");
    EmitVariants(dir, "finalized", wf.bytes());
    WriteCorpusFile(dir, "live.bin", wl.bytes());
    // CRC-frame length that would wrap an additive bounds check: the
    // reader must reject it without touching out-of-range memory.
    BinaryWriter overflow;
    overflow.Put<uint32_t>(0x50424531);  // "PBE1"
    overflow.Put<uint32_t>(2);           // framed version
    overflow.Put<uint64_t>(~uint64_t{0} - 3);
    WriteCorpusFile(dir, "frame_len_overflow.bin", overflow.bytes());
  }
  {
    Pbe2Options o2;
    o2.gamma = 1.0;
    Pbe2 live(o2);
    for (const auto& r : records) live.Append(r.time);
    BinaryWriter wl;
    live.Serialize(&wl);
    Pbe2 fin = live;
    fin.Finalize();
    BinaryWriter wf;
    fin.Serialize(&wf);
    const std::string dir = Subdir(root, "pbe2");
    EmitVariants(dir, "finalized", wf.bytes());
    WriteCorpusFile(dir, "live.bin", wl.bytes());
  }

  // CM-PBE grid (shape is adopted from the blob by the deserializer).
  {
    CmPbeOptions go;
    go.depth = 2;
    go.width = 3;
    Pbe1Options cell;
    cell.buffer_points = 8;
    cell.budget_points = 4;
    CmPbe<Pbe1> grid(go, cell);
    for (const auto& r : records) grid.Append(r.id, r.time);
    grid.Finalize();
    BinaryWriter w;
    grid.Serialize(&w);
    EmitVariants(Subdir(root, "cmpbe"), "grid", w.bytes());
  }

  // Dyadic index — must match fuzz_dyadic's universe (8).
  {
    CmPbeOptions go;
    go.depth = 2;
    go.width = 4;
    Pbe1Options cell;
    cell.buffer_points = 8;
    cell.budget_points = 4;
    DyadicBurstIndex<Pbe1> idx(8, go, cell);
    for (const auto& r : records) idx.Append(r.id, r.time);
    idx.Finalize();
    BinaryWriter w;
    idx.Serialize(&w);
    EmitVariants(Subdir(root, "dyadic"), "index", w.bytes());
  }

  // Engine — matches fuzz_engine's options (universe 8, lateness 4):
  // finalized form plus a live form holding a re-order buffer.
  {
    BurstEngineOptions<Pbe1> eo;
    eo.universe_size = 8;
    eo.grid.depth = 2;
    eo.grid.width = 4;
    eo.cell.buffer_points = 16;
    eo.cell.budget_points = 4;
    eo.heavy_hitter_capacity = 4;
    eo.max_lateness = 4;
    BurstEngine<Pbe1> engine(eo);
    for (const auto& r : records) {
      if (!engine.Append(r.id, r.time).ok()) return 1;
    }
    // Two late-but-admissible records keep the re-order buffer busy.
    if (!engine.Append(3, 20).ok() || !engine.Append(1, 19).ok()) return 1;
    BinaryWriter wl;
    engine.Serialize(&wl);
    engine.Finalize();
    BinaryWriter wf;
    engine.Serialize(&wf);
    const std::string dir = Subdir(root, "engine");
    EmitVariants(dir, "finalized", wf.bytes());
    WriteCorpusFile(dir, "live_reorder.bin", wl.bytes());
  }

  // WAL segment: written by the real writer, then read back as bytes.
  {
    const std::string scratch = root + "/.wal_scratch";
    if (!env->CreateDirIfMissing(scratch).ok()) return 1;
    WalWriter::Options wo;
    auto writer = WalWriter::Open(env, scratch, 1, wo);
    if (!writer.ok()) return 1;
    for (const auto& r : records) {
      if (!writer.value()
               ->AddRecord(WalRecordType::kEvent,
                           recovery_internal::EncodeEventPayload(r.id, r.time,
                                                                 1))
               .ok()) {
        return 1;
      }
    }
    if (!writer.value()->Sync().ok()) return 1;
    auto bytes = env->ReadFileBytes(WalSegmentPath(scratch, 1));
    if (!bytes.ok()) return 1;
    const std::string dir = Subdir(root, "wal");
    EmitVariants(dir, "segment", bytes.value());
    // A torn tail (mid-record truncation) is the expected crash
    // remnant and must replay cleanly.
    WriteCorpusFile(dir, "segment_torn.bin", Truncated(bytes.value(), 7));
    if (!env->DeleteFile(WalSegmentPath(scratch, 1)).ok()) return 1;
    ::rmdir(scratch.c_str());
  }

  // Snapshot file: real WriteSnapshotFile output.
  {
    const std::string scratch = root + "/.snap_scratch";
    if (!env->CreateDirIfMissing(scratch).ok()) return 1;
    BurstEngineOptions<Pbe1> eo;
    eo.universe_size = 8;
    eo.grid.depth = 2;
    eo.grid.width = 4;
    eo.cell.buffer_points = 16;
    eo.cell.budget_points = 4;
    BurstEngine<Pbe1> engine(eo);
    for (const auto& r : records) {
      if (!engine.Append(r.id, r.time).ok()) return 1;
    }
    engine.Finalize();
    BinaryWriter blob;
    engine.Serialize(&blob);
    if (!WriteSnapshotFile(env, scratch, 1, WalPosition{2, 16}, blob.bytes())
             .ok()) {
      return 1;
    }
    auto bytes = env->ReadFileBytes(SnapshotPath(scratch, 1));
    if (!bytes.ok()) return 1;
    EmitVariants(Subdir(root, "snapshot"), "snapshot", bytes.value());
    if (!env->DeleteFile(SnapshotPath(scratch, 1)).ok()) return 1;
    ::rmdir(scratch.c_str());
  }

  // SketchStore file: a real Save()'s bytes, plus the hostile-shape
  // regression — a well-formed config header whose grid shape would
  // have the engine constructor allocate terabytes before the payload
  // could be rejected (caught by the cell-count-vs-payload bound).
  {
    const std::string scratch = root + "/.store_scratch";
    if (!env->CreateDirIfMissing(scratch).ok()) return 1;
    BurstEngineOptions<Pbe1> eo;
    eo.universe_size = 8;
    eo.grid.depth = 2;
    eo.grid.width = 4;
    eo.cell.buffer_points = 16;
    eo.cell.budget_points = 4;
    BurstEngine<Pbe1> engine(eo);
    for (const auto& r : records) {
      if (!engine.Append(r.id, r.time).ok()) return 1;
    }
    engine.Finalize();
    SketchStore store(scratch);
    if (!store.Save("seed", engine).ok()) return 1;
    auto bytes = env->ReadFileBytes(scratch + "/seed.sketch");
    if (!bytes.ok()) return 1;
    const std::string dir = Subdir(root, "sketch_store");
    EmitVariants(dir, "sketch", bytes.value());
    // Hostile shape: valid magic/version/kind but a grid whose
    // construction alone would dwarf the file.
    BinaryWriter hostile;
    hostile.Put<uint32_t>(0x42535354);           // "BSST"
    hostile.Put<uint32_t>(1);                    // version
    hostile.Put<uint8_t>(1);                     // kind: PBE-1
    hostile.Put<uint32_t>(1u << 30);             // universe
    hostile.Put<uint64_t>(uint64_t{1} << 40);    // grid_depth
    hostile.Put<uint64_t>(uint64_t{1} << 40);    // grid_width
    hostile.Put<uint64_t>(0);                    // grid_seed
    hostile.Put<uint8_t>(0);                     // estimator
    hostile.Put<uint8_t>(0);                     // prune_rule
    hostile.Put<uint64_t>(0);                    // heavy_capacity
    hostile.Put<uint64_t>(16);                   // buffer_points
    hostile.Put<uint64_t>(4);                    // budget_points
    hostile.Put<double>(-1.0);                   // error_cap
    hostile.Put<double>(8.0);                    // gamma
    hostile.Put<uint64_t>(0);                    // max_polygon_vertices
    WriteCorpusFile(dir, "hostile_shape.bin", hostile.bytes());
    auto names = env->ListDir(scratch);
    if (names.ok()) {
      for (const auto& n : names.value()) {
        (void)env->DeleteFile(scratch + "/" + n);
      }
    }
    ::rmdir(scratch.c_str());
  }

  // Wire: batched-parser inputs. Layout (see fuzz_wire.cc): one
  // split-count byte, that many split-position bytes, then the raw
  // byte stream a pipelining client would send.
  {
    const std::string dir = Subdir(root, "wire");
    auto seed = [](size_t splits, std::initializer_list<uint8_t> cuts,
                   const char* stream) {
      std::vector<uint8_t> bytes;
      bytes.push_back(static_cast<uint8_t>(splits));
      for (uint8_t cut : cuts) bytes.push_back(cut);
      const size_t len = std::strlen(stream);
      for (size_t i = 0; i < len; ++i) {
        bytes.push_back(static_cast<uint8_t>(stream[i]));
      }
      return bytes;
    };
    // A clean pipelined ADD burst, unsplit.
    WriteCorpusFile(dir, "adds.bin",
                    seed(0, {}, "ADD 0 5\nADD 0 5\nADD 1 6\nADD 2 6 3\n"));
    // The same burst with recv boundaries through the middle of lines.
    WriteCorpusFile(dir, "adds_split.bin",
                    seed(3, {5, 13, 21},
                         "ADD 0 5\nADD 0 5\nADD 1 6\nADD 2 6 3\n"));
    // Refusals inside a batch: id out of range, time regression.
    WriteCorpusFile(dir, "adds_refused.bin",
                    seed(1, {9}, "ADD 0 9\nADD 99 9\nADD 1 4\nADD 1 9\n"));
    // ADD runs broken by other verbs and parse errors.
    WriteCorpusFile(
        dir, "mixed.bin",
        seed(2, {7, 19}, "ADD 0 5\nPING\nADD 1 6\nADD x y\nQUIT\nADD 2 7\n"));
    // CRLF line endings and a trailing partial line.
    WriteCorpusFile(dir, "crlf_partial.bin",
                    seed(1, {6}, "ADD 3 5\r\nADD 3 6\r\nADD 3"));
  }

  // CSV: valid text, comment/blank-line dialect, and a malformed line.
  {
    const std::string dir = Subdir(root, "csv");
    const std::string valid =
        "# id,timestamp\n0,5\n1,5\n2,6\n\n0,8\n3,8\n4,12\n";
    WriteCorpusFile(dir, "valid.csv",
                    std::vector<uint8_t>(valid.begin(), valid.end()));
    const std::string bad = "0,5\n1,notatime\n";
    WriteCorpusFile(dir, "malformed.csv",
                    std::vector<uint8_t>(bad.begin(), bad.end()));
    const std::string regress = "0,9\n1,5\n";  // time regression
    WriteCorpusFile(dir, "regression.csv",
                    std::vector<uint8_t>(regress.begin(), regress.end()));
  }

  std::printf("corpus regenerated under %s\n", root.c_str());
  return 0;
}
