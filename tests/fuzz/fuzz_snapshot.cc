// Fuzzes snapshot loading: arbitrary bytes written as
// snapshot-00000001.snap must either fail verification with a Status
// or parse into contents whose embedded engine blob then deserializes
// with clean-Status-or-valid-object semantics.

#include "core/burst_engine.h"
#include "fuzz_driver.h"
#include "recovery/snapshot.h"
#include "util/env.h"
#include "util/serialize.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace bursthist;
  Env* env = Env::Default();
  const std::string dir = bursthist_fuzz::ScratchDir() + "_snapshot";
  if (!env->CreateDirIfMissing(dir).ok()) return 0;

  const std::string path = SnapshotPath(dir, 1);
  {
    auto file = env->NewWritableFile(path);
    if (!file.ok()) return 0;
    if (size > 0 && !file.value()->Append(data, size).ok()) return 0;
    if (!file.value()->Close().ok()) return 0;
  }

  auto gens = ListSnapshots(env, dir);
  BURSTHIST_FUZZ_REQUIRE(gens.ok());  // listing never depends on content
  auto snap = ReadSnapshotFile(env, dir, 1);
  if (!snap.ok()) return 0;

  // The trailer checksum passed; the blob must still be treated as
  // untrusted by the engine deserializer.
  BurstEngineOptions<Pbe1> options;
  options.universe_size = 8;
  options.grid.depth = 2;
  options.grid.width = 4;
  options.cell.buffer_points = 16;
  options.cell.budget_points = 4;
  BurstEngine<Pbe1> engine(options);
  BinaryReader r(snap.value().blob);
  (void)engine.Deserialize(&r);
  return 0;
}
