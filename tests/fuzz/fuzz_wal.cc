// Fuzzes WAL replay: arbitrary bytes written as a segment file must
// replay to either a clean result (possibly with a torn tail) or a
// Status::Corruption — never a crash, hang, or runaway allocation.
// Delivered records must decode like the durable engine's sink does.

#include "fuzz_driver.h"
#include "recovery/durable_engine.h"
#include "recovery/wal.h"
#include "util/env.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace bursthist;
  Env* env = Env::Default();
  const std::string dir = bursthist_fuzz::ScratchDir() + "_wal";
  if (!env->CreateDirIfMissing(dir).ok()) return 0;

  const std::string path = WalSegmentPath(dir, 1);
  {
    auto file = env->NewWritableFile(path);
    if (!file.ok()) return 0;
    if (size > 0 && !file.value()->Append(data, size).ok()) return 0;
    if (!file.value()->Close().ok()) return 0;
  }

  uint64_t delivered = 0;
  auto replay = ReplayWal(
      env, dir, WalPosition{1, 0},
      [&delivered](WalRecordType type, const uint8_t* payload, size_t len,
                   const WalPosition&) {
        // Same decode the durable engine's sink performs; a payload the
        // checksum accepted may still be semantically malformed, which
        // must surface as a Status, not a crash.
        if (type == WalRecordType::kEvent) {
          EventId e = 0;
          Timestamp t = 0;
          Count count = 0;
          (void)recovery_internal::DecodeEventPayload(payload, len, &e, &t,
                                                      &count);
        }
        ++delivered;
        return Status::OK();
      });
  if (replay.ok()) {
    // A clean replay never claims more records than the input could
    // possibly frame (9 bytes of framing per record).
    BURSTHIST_FUZZ_REQUIRE(delivered <= size / 9 + 1);
    BURSTHIST_FUZZ_REQUIRE(replay.value().records == delivered);
  }
  return 0;
}
