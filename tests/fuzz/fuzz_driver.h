// Shared scaffolding for the fuzz targets.
//
// Every target defines the libFuzzer entry point
//
//   extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t n);
//
// and builds in two modes:
//
//  * BURSTHIST_FUZZ=ON (clang): compiled with -fsanitize=fuzzer,address
//    and BURSTHIST_FUZZ_LIBFUZZER defined — libFuzzer provides main()
//    and drives coverage-guided mutation from tests/fuzz/corpus/<t>/.
//  * Plain build (any compiler): this header provides a standalone
//    main() that replays every corpus file (or explicit file argument)
//    through the same entry point — registered as the <target>_corpus
//    ctest so the checked-in corpus regresses on every tier-1 run.
//
// The contract under test is always "clean Status or valid object":
// feeding arbitrary bytes to a deserializer must either fail with a
// Status or produce an object whose queries and re-serialization work —
// never crash, hang, overflow, or allocate absurdly.

#ifndef BURSTHIST_TESTS_FUZZ_FUZZ_DRIVER_H_
#define BURSTHIST_TESTS_FUZZ_FUZZ_DRIVER_H_

#include <unistd.h>

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

/// Aborts (so both libFuzzer and ctest flag the input) when a fuzz
/// invariant breaks. Used instead of assert() so the check survives
/// NDEBUG builds.
#define BURSTHIST_FUZZ_REQUIRE(cond)                                      \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "fuzz invariant failed: %s at %s:%d\n", #cond, \
                   __FILE__, __LINE__);                                   \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

#ifndef BURSTHIST_FUZZ_LIBFUZZER

#include "util/env.h"

/// Corpus-regression main: each argument is a corpus directory (every
/// file inside replays) or a single input file.
int main(int argc, char** argv) {
  bursthist::Env* env = bursthist::Env::Default();
  size_t ran = 0;
  for (int i = 1; i < argc; ++i) {
    std::vector<std::string> paths;
    auto names = env->ListDir(argv[i]);
    if (names.ok()) {
      for (const auto& n : names.value()) {
        paths.push_back(std::string(argv[i]) + "/" + n);
      }
    } else {
      paths.emplace_back(argv[i]);
    }
    for (const auto& p : paths) {
      auto bytes = env->ReadFileBytes(p);
      if (!bytes.ok()) {
        std::fprintf(stderr, "unreadable corpus input: %s\n", p.c_str());
        return 1;
      }
      std::fprintf(stderr, "replaying %s (%zu bytes)\n", p.c_str(),
                   bytes.value().size());
      LLVMFuzzerTestOneInput(bytes.value().data(), bytes.value().size());
      ++ran;
    }
  }
  // The empty input is always part of the contract.
  LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(""), 0);
  std::printf("replayed %zu corpus inputs cleanly\n", ran);
  return 0;
}

#endif  // !BURSTHIST_FUZZ_LIBFUZZER

namespace bursthist_fuzz {

/// A per-process scratch directory for targets that must round-trip
/// through the filesystem (WAL, snapshot, CSV).
inline const std::string& ScratchDir() {
  static const std::string dir = [] {
    const char* tmp = std::getenv("TMPDIR");
    std::string d = (tmp != nullptr && *tmp != '\0') ? tmp : "/tmp";
    // Pid-scoped so concurrently running fuzz targets never share
    // (and cross-contaminate) a directory.
    d += "/bursthist_fuzz_scratch_" + std::to_string(::getpid());
    return d;
  }();
  return dir;
}

}  // namespace bursthist_fuzz

#endif  // BURSTHIST_TESTS_FUZZ_FUZZ_DRIVER_H_
