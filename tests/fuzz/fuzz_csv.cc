// Fuzzes the CSV reader: arbitrary text must parse with a clean
// line-numbered Status or yield a stream that round-trips through
// write-then-read as a fixpoint.

#include "fuzz_driver.h"
#include "stream/csv_io.h"
#include "util/env.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace bursthist;
  const std::string text(reinterpret_cast<const char*>(data), size);
  auto parsed = ParseEventStreamCsv(text);
  if (!parsed.ok()) return 0;

  Env* env = Env::Default();
  const std::string dir = bursthist_fuzz::ScratchDir() + "_csv";
  if (!env->CreateDirIfMissing(dir).ok()) return 0;
  const std::string path = dir + "/stream.csv";
  BURSTHIST_FUZZ_REQUIRE(WriteEventStreamCsv(path, parsed.value()).ok());
  auto reread = ReadEventStreamCsv(path);
  BURSTHIST_FUZZ_REQUIRE(reread.ok());
  BURSTHIST_FUZZ_REQUIRE(reread.value().records() ==
                         parsed.value().records());
  return 0;
}
