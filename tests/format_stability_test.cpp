// Golden-bytes tests: the on-disk formats must stay stable across
// releases — a payload written by this version must equal these
// byte-for-byte snapshots, and future versions must keep reading them.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/burst_engine.h"
#include "core/cm_pbe.h"
#include "core/pbe1.h"
#include "core/pbe2.h"
#include "pla/linear_model.h"
#include "pla/staircase_model.h"

namespace bursthist {
namespace {

std::string Hex(const std::vector<uint8_t>& bytes) {
  std::string out;
  char buf[4];
  for (uint8_t b : bytes) {
    std::snprintf(buf, sizeof(buf), "%02x", b);
    out += buf;
  }
  return out;
}

std::vector<uint8_t> FromHex(const std::string& hex) {
  std::vector<uint8_t> out;
  for (size_t i = 0; i + 1 < hex.size(); i += 2) {
    out.push_back(static_cast<uint8_t>(
        std::stoul(hex.substr(i, 2), nullptr, 16)));
  }
  return out;
}

TEST(FormatStabilityTest, StaircaseModelGolden) {
  // Points (5, 2), (9, 3), (20, 10):
  //   n=3 | t0=5 zigzag->0a | dc=2 | dt=4 | dc=1 | dt=11(0x0b) | dc=7
  StaircaseModel m({{5, 2}, {9, 3}, {20, 10}});
  BinaryWriter w;
  m.Serialize(&w);
  EXPECT_EQ(Hex(w.bytes()), "030a0204010b07");
}

TEST(FormatStabilityTest, StaircaseModelReadsGolden) {
  auto bytes = FromHex("030a0204010b07");
  StaircaseModel m;
  BinaryReader r(bytes);
  ASSERT_TRUE(m.Deserialize(&r).ok());
  ASSERT_EQ(m.size(), 3u);
  EXPECT_EQ(m.points()[0], (CurvePoint{5, 2}));
  EXPECT_EQ(m.points()[2], (CurvePoint{20, 10}));
}

TEST(FormatStabilityTest, LinearModelGolden) {
  // One segment: start 4, last 10, a = 0.5, b = 2.0.
  LinearModel m;
  m.AppendSegment(PlaSegment{0.5, 2.0, 4, 10});
  BinaryWriter w;
  m.Serialize(&w);
  // n=1 | start zigzag(4)=08 | span=6 | a,b little-endian doubles.
  EXPECT_EQ(Hex(w.bytes()),
            "010806"
            "000000000000e03f"   // 0.5
            "0000000000000040");  // 2.0
}

TEST(FormatStabilityTest, Pbe1HeaderGolden) {
  Pbe1Options o;
  o.buffer_points = 4;
  o.budget_points = 2;
  Pbe1 pbe(o);
  pbe.Append(3);
  pbe.Finalize();
  BinaryWriter w;
  pbe.Serialize(&w);
  const std::string hex = Hex(w.bytes());
  // Magic "PBE1" little-endian + version 2 (CRC32C-framed payload).
  EXPECT_EQ(hex.substr(0, 16), "3145425002000000");
}

TEST(FormatStabilityTest, Pbe2HeaderGolden) {
  Pbe2 pbe;
  pbe.Append(3);
  pbe.Finalize();
  BinaryWriter w;
  pbe.Serialize(&w);
  // Magic "PBE2" + version 3 (CRC32C-framed payload).
  EXPECT_EQ(Hex(w.bytes()).substr(0, 16), "3245425003000000");
}

// ---------------------------------------------------------------------
// Legacy (pre-CRC-trailer) payloads, byte-frozen from the last release
// that wrote them. Readers must keep accepting these verbatim even
// though current writers emit CRC32C-framed successors.

// Pbe1 v1: buffer 4 / budget 2, appends {1, 1, 3, 6, 10, 15, 15, 21}.
constexpr const char* kLegacyPbe1V1 =
    "314542500100000004000000000000000200000000000000000000000000f0bf0800"
    "00000000000000000000000026400000000000002640010402020903050206010000"
    "000000000000";

// Pbe2 v2: gamma 2.0, appends {1, 2, 3, 7, 9, 14, 20, 21}.
constexpr const char* kLegacyPbe2V2 =
    "32454250020000000000000000000040000000000000000000000000000000000000"
    "0000000000400800000000000000"
    "0102148c1afe36c5a8d13fbdbbbbbbbbbbeb3f";

// CmPbe<Pbe1> v1: grid depth 1 x width 2, cell buffer 4 / budget 2,
// appends (i % 3, i + 1) for i in [0, 8).
constexpr const char* kLegacyCmPbeV1 =
    "42504d4301000000010000000000000002000000000000003d57000b000000000000"
    "080000000000000001314542500100000004000000000000000200000000000000000"
    "000000000f0bf0500000000000000000000000000144000000000000014400103020"
    "1050301010000000000000000314542500100000004000000000000000200000000000"
    "000000000000000f0bf03000000000000000000000000000840000000000000084001"
    "02040106020000000000000000";

// BurstEngine<Pbe1> v2: universe 2, grid depth 1 x width 2, cell
// buffer 4 / budget 2, appends (i % 2, i + 1) for i in [0, 6).
constexpr const char* kLegacyEngineV2 =
    "474e454202000000060000000000000006000000000000000101000000000000000"
    "0000000000000000044415944010000000200000002000000000000000042504d430"
    "100000001000000000000000200000000000000f6d037a900000000000106000000"
    "0000000001314542500100000004000000000000000200000000000000000000000"
    "000f0bf030000000000000000000000000000400000000000000040010202010402"
    "0000000000000000314542500100000004000000000000000200000000000000000"
    "000000000f0bf0300000000000000000000000000004000000000000000400102040"
    "10402000000000000000042504d43010000000100000000000000010000000000000"
    "0af4a6f470100000000010600000000000000013145425001000000040000000000"
    "00000200000000000000000000000000f0bf060000000000000000000000000008"
    "4000000000000008400104020103030101010100000000000000005653505301000"
    "000010000000000000000000000000000000000000000000000";

TEST(FormatStabilityTest, ReadsLegacyPbe1V1) {
  Pbe1Options o;
  o.buffer_points = 4;
  o.budget_points = 2;
  Pbe1 reference(o);
  for (Timestamp t : {1, 1, 3, 6, 10, 15, 15, 21}) reference.Append(t);
  reference.Finalize();

  Pbe1 legacy;
  auto bytes = FromHex(kLegacyPbe1V1);
  BinaryReader r(bytes);
  ASSERT_TRUE(legacy.Deserialize(&r).ok());
  EXPECT_EQ(legacy.TotalCount(), 8u);
  for (Timestamp t = 0; t <= 25; ++t) {
    EXPECT_DOUBLE_EQ(legacy.EstimateCumulative(t),
                     reference.EstimateCumulative(t));
  }
}

TEST(FormatStabilityTest, ReadsLegacyPbe2V2) {
  Pbe2Options o;
  o.gamma = 2.0;
  Pbe2 reference(o);
  for (Timestamp t : {1, 2, 3, 7, 9, 14, 20, 21}) reference.Append(t);
  reference.Finalize();

  Pbe2 legacy;
  auto bytes = FromHex(kLegacyPbe2V2);
  BinaryReader r(bytes);
  ASSERT_TRUE(legacy.Deserialize(&r).ok());
  EXPECT_EQ(legacy.TotalCount(), 8u);
  for (Timestamp t = 0; t <= 25; ++t) {
    EXPECT_DOUBLE_EQ(legacy.EstimateCumulative(t),
                     reference.EstimateCumulative(t));
  }
}

TEST(FormatStabilityTest, ReadsLegacyCmPbeV1) {
  Pbe1Options cell;
  cell.buffer_points = 4;
  cell.budget_points = 2;
  CmPbeOptions grid;
  grid.depth = 1;
  grid.width = 2;
  CmPbe<Pbe1> reference(grid, cell);
  for (int i = 0; i < 8; ++i) {
    reference.Append(static_cast<EventId>(i % 3), i + 1);
  }
  reference.Finalize();

  CmPbe<Pbe1> legacy(grid, cell);
  auto bytes = FromHex(kLegacyCmPbeV1);
  BinaryReader r(bytes);
  ASSERT_TRUE(legacy.Deserialize(&r).ok());
  for (EventId e = 0; e < 3; ++e) {
    for (Timestamp t = 0; t <= 10; ++t) {
      EXPECT_DOUBLE_EQ(legacy.EstimateCumulative(e, t),
                       reference.EstimateCumulative(e, t));
    }
  }
}

TEST(FormatStabilityTest, ReadsLegacyEngineV2) {
  BurstEngineOptions<Pbe1> o;
  o.universe_size = 2;
  o.grid.depth = 1;
  o.grid.width = 2;
  o.cell.buffer_points = 4;
  o.cell.budget_points = 2;
  BurstEngine1 reference(o);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(reference.Append(static_cast<EventId>(i % 2), i + 1).ok());
  }
  reference.Finalize();

  BurstEngine1 legacy(o);
  auto bytes = FromHex(kLegacyEngineV2);
  BinaryReader r(bytes);
  ASSERT_TRUE(legacy.Deserialize(&r).ok());
  EXPECT_EQ(legacy.TotalCount(), 6u);
  EXPECT_TRUE(legacy.finalized());
  for (EventId e = 0; e < 2; ++e) {
    for (Timestamp t = 0; t <= 8; ++t) {
      EXPECT_DOUBLE_EQ(legacy.PointQuery(e, t, 2),
                       reference.PointQuery(e, t, 2));
      EXPECT_DOUBLE_EQ(legacy.CumulativeQuery(e, t),
                       reference.CumulativeQuery(e, t));
    }
  }
}

// BurstEngine<Pbe1> v3 (CRC-framed, no backpressure section): universe
// 2, grid depth 1 x width 2, cell buffer 4 / budget 2, appends
// (i % 2, i + 1) for i in [0, 6), finalized. Byte-frozen from the last
// v3 writer.
constexpr const char* kLegacyEngineV3 =
    "474e454203000000cb0100000000000006000000000000000600000000000000010"
    "100000000000000000000000000000000444159440200000075010000000000000"
    "200000002000000000000000042504d4302000000c7000000000000000100000000"
    "0000000200000000000000f6d037a9000000000001060000000000000001314542"
    "50020000003e0000000000000004000000000000000200000000000000000000000"
    "000f0bf0300000000000000000000000000004000000000000000400102020104020"
    "000000000000000c7e0bb8a31454250020000003e00000000000000040000000000"
    "00000200000000000000000000000000f0bf0300000000000000000000000000004"
    "00000000000000040010204010402000000000000000067189f2d2c9f584e42504d"
    "4302000000790000000000000001000000000000000100000000000000af4a6f47"
    "010000000001060000000000000001314542500200000042000000000000000400"
    "0000000000000200000000000000000000000000f0bf0600000000000000000000"
    "00000008400000000000000840010402010303010101010000000000000000661"
    "446b4ad7513f99c4136e25653505301000000010000000000000000000000000000"
    "000000000000000000faad9dc2";

// Same configuration plus max_lateness 4, same six appends but NOT
// finalized — the re-order buffer still holds the records. Byte-frozen
// from the last v3 writer (live engines serialize their buffer since
// v2).
constexpr const char* kLegacyEngineV3Live =
    "474e4542030000004b02000000000000020000000000000002000000000000000100"
    "06000000000000000400000000000000030000000000000000000000010000000000"
    "00000400000000000000010000000100000000000000050000000000000000000000"
    "01000000000000000600000000000000010000000100000000000000444159440200"
    "0000a5010000000000000200000002000000000000000042504d4302000000df0000"
    "000000000001000000000000000200000000000000f6d037a9000000000001020000"
    "00000000000031454250020000004a00000000000000040000000000000002000000"
    "00000000000000000000f0bf01000000000000000000000000000000000000000000"
    "00000000010000000000000001000000000000000100000000000000682ae7703145"
    "4250020000004a000000000000000400000000000000020000000000000000000000"
    "0000f0bf010000000000000000000000000000000000000000000000000001000000"
    "00000000020000000000000001000000000000009b4a1f63f89b501142504d430200"
    "0000910000000000000001000000000000000100000000000000af4a6f4701000000"
    "000102000000000000000031454250020000005a0000000000000004000000000000"
    "000200000000000000000000000000f0bf0200000000000000000000000000000000"
    "00000000000000000002000000000000000100000000000000010000000000000002"
    "000000000000000200000000000000c91269e35a7bd5f0b81b479356535053010000"
    "000100000000000000000000000000000000000000000000007f835d8e";

BurstEngineOptions<Pbe1> LegacyEngineOptions() {
  BurstEngineOptions<Pbe1> o;
  o.universe_size = 2;
  o.grid.depth = 1;
  o.grid.width = 2;
  o.cell.buffer_points = 4;
  o.cell.budget_points = 2;
  return o;
}

TEST(FormatStabilityTest, ReadsLegacyEngineV3) {
  BurstEngineOptions<Pbe1> o = LegacyEngineOptions();
  BurstEngine1 reference(o);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(reference.Append(static_cast<EventId>(i % 2), i + 1).ok());
  }
  reference.Finalize();

  BurstEngine1 legacy(o);
  auto bytes = FromHex(kLegacyEngineV3);
  BinaryReader r(bytes);
  ASSERT_TRUE(legacy.Deserialize(&r).ok());
  EXPECT_EQ(legacy.TotalCount(), 6u);
  EXPECT_TRUE(legacy.finalized());
  // v3 carries no backpressure section: counters restore to zero and
  // the constructed options stay in force.
  EXPECT_EQ(legacy.DroppedCount(), 0u);
  EXPECT_EQ(legacy.ForcedDrains(), 0u);
  EXPECT_EQ(legacy.options().max_reorder_events, 0u);
  for (EventId e = 0; e < 2; ++e) {
    for (Timestamp t = 0; t <= 8; ++t) {
      EXPECT_DOUBLE_EQ(legacy.PointQuery(e, t, 2),
                       reference.PointQuery(e, t, 2));
      EXPECT_DOUBLE_EQ(legacy.CumulativeQuery(e, t),
                       reference.CumulativeQuery(e, t));
    }
  }
}

TEST(FormatStabilityTest, ReadsLegacyEngineV3Live) {
  BurstEngineOptions<Pbe1> o = LegacyEngineOptions();
  o.max_lateness = 4;

  BurstEngine1 legacy(o);
  auto bytes = FromHex(kLegacyEngineV3Live);
  BinaryReader r(bytes);
  ASSERT_TRUE(legacy.Deserialize(&r).ok());
  EXPECT_FALSE(legacy.finalized());
  // Appending t=6 advanced the watermark to 2 and ingested t=1,2; the
  // other four records were still buffered when the blob was frozen.
  EXPECT_EQ(legacy.TotalCount(), 2u);
  EXPECT_EQ(legacy.BufferedCount(), 4u);
  // The restored engine stays appendable and drains correctly.
  ASSERT_TRUE(legacy.Append(0, 7).ok());
  legacy.Finalize();
  EXPECT_EQ(legacy.TotalCount(), 7u);

  BurstEngine1 reference(o);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(reference.Append(static_cast<EventId>(i % 2), i + 1).ok());
  }
  ASSERT_TRUE(reference.Append(0, 7).ok());
  reference.Finalize();
  for (EventId e = 0; e < 2; ++e) {
    for (Timestamp t = 0; t <= 9; ++t) {
      EXPECT_DOUBLE_EQ(legacy.PointQuery(e, t, 2),
                       reference.PointQuery(e, t, 2));
    }
  }
}

TEST(FormatStabilityTest, EngineHeaderGoldenV4) {
  BurstEngine1 engine(LegacyEngineOptions());
  ASSERT_TRUE(engine.Append(0, 1).ok());
  engine.Finalize();
  BinaryWriter w;
  engine.Serialize(&w);
  // Magic "GNEB" little-endian ("BENG") + version 4.
  EXPECT_EQ(Hex(w.bytes()).substr(0, 16), "474e454204000000");
}

TEST(FormatStabilityTest, EngineV4RoundTripsBackpressureState) {
  BurstEngineOptions<Pbe1> o = LegacyEngineOptions();
  o.max_lateness = 4;
  o.max_reorder_events = 2;
  o.overflow_policy = ReorderOverflowPolicy::kDropOldest;
  BurstEngine1 original(o);
  ASSERT_TRUE(original.Append(0, 100).ok());
  ASSERT_TRUE(original.Append(1, 99).ok());
  ASSERT_TRUE(original.Append(0, 98).ok());  // over cap: sheds one
  ASSERT_EQ(original.DroppedCount(), 1u);
  BinaryWriter w;
  original.Serialize(&w);

  BurstEngine1 reread(LegacyEngineOptions());
  BinaryReader r(w.bytes());
  ASSERT_TRUE(reread.Deserialize(&r).ok());
  EXPECT_EQ(reread.options().max_reorder_events, 2u);
  EXPECT_EQ(reread.options().overflow_policy,
            ReorderOverflowPolicy::kDropOldest);
  EXPECT_EQ(reread.DroppedCount(), 1u);
  BinaryWriter w2;
  reread.Serialize(&w2);
  EXPECT_EQ(Hex(w.bytes()), Hex(w2.bytes()));
}

TEST(FormatStabilityTest, RoundTripPinnedPbe1Payload) {
  // A full payload frozen from the current writer; deserializing it
  // must keep working verbatim in future versions.
  Pbe1Options o;
  o.buffer_points = 4;
  o.budget_points = 2;
  Pbe1 original(o);
  for (Timestamp t : {1, 1, 3, 6, 10, 15, 15, 21}) original.Append(t);
  original.Finalize();
  BinaryWriter w;
  original.Serialize(&w);

  Pbe1 reread;
  BinaryReader r(w.bytes());
  ASSERT_TRUE(reread.Deserialize(&r).ok());
  EXPECT_EQ(reread.TotalCount(), 8u);
  for (Timestamp t = 0; t <= 25; ++t) {
    EXPECT_DOUBLE_EQ(reread.EstimateCumulative(t),
                     original.EstimateCumulative(t));
  }
}

}  // namespace
}  // namespace bursthist
