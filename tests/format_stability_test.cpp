// Golden-bytes tests: the on-disk formats must stay stable across
// releases — a payload written by this version must equal these
// byte-for-byte snapshots, and future versions must keep reading them.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/pbe1.h"
#include "core/pbe2.h"
#include "pla/linear_model.h"
#include "pla/staircase_model.h"

namespace bursthist {
namespace {

std::string Hex(const std::vector<uint8_t>& bytes) {
  std::string out;
  char buf[4];
  for (uint8_t b : bytes) {
    std::snprintf(buf, sizeof(buf), "%02x", b);
    out += buf;
  }
  return out;
}

std::vector<uint8_t> FromHex(const std::string& hex) {
  std::vector<uint8_t> out;
  for (size_t i = 0; i + 1 < hex.size(); i += 2) {
    out.push_back(static_cast<uint8_t>(
        std::stoul(hex.substr(i, 2), nullptr, 16)));
  }
  return out;
}

TEST(FormatStabilityTest, StaircaseModelGolden) {
  // Points (5, 2), (9, 3), (20, 10):
  //   n=3 | t0=5 zigzag->0a | dc=2 | dt=4 | dc=1 | dt=11(0x0b) | dc=7
  StaircaseModel m({{5, 2}, {9, 3}, {20, 10}});
  BinaryWriter w;
  m.Serialize(&w);
  EXPECT_EQ(Hex(w.bytes()), "030a0204010b07");
}

TEST(FormatStabilityTest, StaircaseModelReadsGolden) {
  auto bytes = FromHex("030a0204010b07");
  StaircaseModel m;
  BinaryReader r(bytes);
  ASSERT_TRUE(m.Deserialize(&r).ok());
  ASSERT_EQ(m.size(), 3u);
  EXPECT_EQ(m.points()[0], (CurvePoint{5, 2}));
  EXPECT_EQ(m.points()[2], (CurvePoint{20, 10}));
}

TEST(FormatStabilityTest, LinearModelGolden) {
  // One segment: start 4, last 10, a = 0.5, b = 2.0.
  LinearModel m;
  m.AppendSegment(PlaSegment{0.5, 2.0, 4, 10});
  BinaryWriter w;
  m.Serialize(&w);
  // n=1 | start zigzag(4)=08 | span=6 | a,b little-endian doubles.
  EXPECT_EQ(Hex(w.bytes()),
            "010806"
            "000000000000e03f"   // 0.5
            "0000000000000040");  // 2.0
}

TEST(FormatStabilityTest, Pbe1HeaderGolden) {
  Pbe1Options o;
  o.buffer_points = 4;
  o.budget_points = 2;
  Pbe1 pbe(o);
  pbe.Append(3);
  pbe.Finalize();
  BinaryWriter w;
  pbe.Serialize(&w);
  const std::string hex = Hex(w.bytes());
  // Magic "PBE1" little-endian + version 1.
  EXPECT_EQ(hex.substr(0, 16), "3145425001000000");
}

TEST(FormatStabilityTest, Pbe2HeaderGolden) {
  Pbe2 pbe;
  pbe.Append(3);
  pbe.Finalize();
  BinaryWriter w;
  pbe.Serialize(&w);
  // Magic "PBE2" + version 2 (varint-era format).
  EXPECT_EQ(Hex(w.bytes()).substr(0, 16), "3245425002000000");
}

TEST(FormatStabilityTest, RoundTripPinnedPbe1Payload) {
  // A full payload frozen from the current writer; deserializing it
  // must keep working verbatim in future versions.
  Pbe1Options o;
  o.buffer_points = 4;
  o.budget_points = 2;
  Pbe1 original(o);
  for (Timestamp t : {1, 1, 3, 6, 10, 15, 15, 21}) original.Append(t);
  original.Finalize();
  BinaryWriter w;
  original.Serialize(&w);

  Pbe1 reread;
  BinaryReader r(w.bytes());
  ASSERT_TRUE(reread.Deserialize(&r).ok());
  EXPECT_EQ(reread.TotalCount(), 8u);
  for (Timestamp t = 0; t <= 25; ++t) {
    EXPECT_DOUBLE_EQ(reread.EstimateCumulative(t),
                     original.EstimateCumulative(t));
  }
}

}  // namespace
}  // namespace bursthist
