// Golden-bytes tests: the on-disk formats must stay stable across
// releases — a payload written by this version must equal these
// byte-for-byte snapshots, and future versions must keep reading them.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/burst_engine.h"
#include "core/cm_pbe.h"
#include "core/pbe1.h"
#include "core/pbe2.h"
#include "pla/linear_model.h"
#include "pla/staircase_model.h"

namespace bursthist {
namespace {

std::string Hex(const std::vector<uint8_t>& bytes) {
  std::string out;
  char buf[4];
  for (uint8_t b : bytes) {
    std::snprintf(buf, sizeof(buf), "%02x", b);
    out += buf;
  }
  return out;
}

std::vector<uint8_t> FromHex(const std::string& hex) {
  std::vector<uint8_t> out;
  for (size_t i = 0; i + 1 < hex.size(); i += 2) {
    out.push_back(static_cast<uint8_t>(
        std::stoul(hex.substr(i, 2), nullptr, 16)));
  }
  return out;
}

TEST(FormatStabilityTest, StaircaseModelGolden) {
  // Points (5, 2), (9, 3), (20, 10):
  //   n=3 | t0=5 zigzag->0a | dc=2 | dt=4 | dc=1 | dt=11(0x0b) | dc=7
  StaircaseModel m({{5, 2}, {9, 3}, {20, 10}});
  BinaryWriter w;
  m.Serialize(&w);
  EXPECT_EQ(Hex(w.bytes()), "030a0204010b07");
}

TEST(FormatStabilityTest, StaircaseModelReadsGolden) {
  auto bytes = FromHex("030a0204010b07");
  StaircaseModel m;
  BinaryReader r(bytes);
  ASSERT_TRUE(m.Deserialize(&r).ok());
  ASSERT_EQ(m.size(), 3u);
  EXPECT_EQ(m.points()[0], (CurvePoint{5, 2}));
  EXPECT_EQ(m.points()[2], (CurvePoint{20, 10}));
}

TEST(FormatStabilityTest, LinearModelGolden) {
  // One segment: start 4, last 10, a = 0.5, b = 2.0.
  LinearModel m;
  m.AppendSegment(PlaSegment{0.5, 2.0, 4, 10});
  BinaryWriter w;
  m.Serialize(&w);
  // n=1 | start zigzag(4)=08 | span=6 | a,b little-endian doubles.
  EXPECT_EQ(Hex(w.bytes()),
            "010806"
            "000000000000e03f"   // 0.5
            "0000000000000040");  // 2.0
}

TEST(FormatStabilityTest, Pbe1HeaderGolden) {
  Pbe1Options o;
  o.buffer_points = 4;
  o.budget_points = 2;
  Pbe1 pbe(o);
  pbe.Append(3);
  pbe.Finalize();
  BinaryWriter w;
  pbe.Serialize(&w);
  const std::string hex = Hex(w.bytes());
  // Magic "PBE1" little-endian + version 2 (CRC32C-framed payload).
  EXPECT_EQ(hex.substr(0, 16), "3145425002000000");
}

TEST(FormatStabilityTest, Pbe2HeaderGolden) {
  Pbe2 pbe;
  pbe.Append(3);
  pbe.Finalize();
  BinaryWriter w;
  pbe.Serialize(&w);
  // Magic "PBE2" + version 3 (CRC32C-framed payload).
  EXPECT_EQ(Hex(w.bytes()).substr(0, 16), "3245425003000000");
}

// ---------------------------------------------------------------------
// Legacy (pre-CRC-trailer) payloads, byte-frozen from the last release
// that wrote them. Readers must keep accepting these verbatim even
// though current writers emit CRC32C-framed successors.

// Pbe1 v1: buffer 4 / budget 2, appends {1, 1, 3, 6, 10, 15, 15, 21}.
constexpr const char* kLegacyPbe1V1 =
    "314542500100000004000000000000000200000000000000000000000000f0bf0800"
    "00000000000000000000000026400000000000002640010402020903050206010000"
    "000000000000";

// Pbe2 v2: gamma 2.0, appends {1, 2, 3, 7, 9, 14, 20, 21}.
constexpr const char* kLegacyPbe2V2 =
    "32454250020000000000000000000040000000000000000000000000000000000000"
    "0000000000400800000000000000"
    "0102148c1afe36c5a8d13fbdbbbbbbbbbbeb3f";

// CmPbe<Pbe1> v1: grid depth 1 x width 2, cell buffer 4 / budget 2,
// appends (i % 3, i + 1) for i in [0, 8).
constexpr const char* kLegacyCmPbeV1 =
    "42504d4301000000010000000000000002000000000000003d57000b000000000000"
    "080000000000000001314542500100000004000000000000000200000000000000000"
    "000000000f0bf0500000000000000000000000000144000000000000014400103020"
    "1050301010000000000000000314542500100000004000000000000000200000000000"
    "000000000000000f0bf03000000000000000000000000000840000000000000084001"
    "02040106020000000000000000";

// BurstEngine<Pbe1> v2: universe 2, grid depth 1 x width 2, cell
// buffer 4 / budget 2, appends (i % 2, i + 1) for i in [0, 6).
constexpr const char* kLegacyEngineV2 =
    "474e454202000000060000000000000006000000000000000101000000000000000"
    "0000000000000000044415944010000000200000002000000000000000042504d430"
    "100000001000000000000000200000000000000f6d037a900000000000106000000"
    "0000000001314542500100000004000000000000000200000000000000000000000"
    "000f0bf030000000000000000000000000000400000000000000040010202010402"
    "0000000000000000314542500100000004000000000000000200000000000000000"
    "000000000f0bf0300000000000000000000000000004000000000000000400102040"
    "10402000000000000000042504d43010000000100000000000000010000000000000"
    "0af4a6f470100000000010600000000000000013145425001000000040000000000"
    "00000200000000000000000000000000f0bf060000000000000000000000000008"
    "4000000000000008400104020103030101010100000000000000005653505301000"
    "000010000000000000000000000000000000000000000000000";

TEST(FormatStabilityTest, ReadsLegacyPbe1V1) {
  Pbe1Options o;
  o.buffer_points = 4;
  o.budget_points = 2;
  Pbe1 reference(o);
  for (Timestamp t : {1, 1, 3, 6, 10, 15, 15, 21}) reference.Append(t);
  reference.Finalize();

  Pbe1 legacy;
  auto bytes = FromHex(kLegacyPbe1V1);
  BinaryReader r(bytes);
  ASSERT_TRUE(legacy.Deserialize(&r).ok());
  EXPECT_EQ(legacy.TotalCount(), 8u);
  for (Timestamp t = 0; t <= 25; ++t) {
    EXPECT_DOUBLE_EQ(legacy.EstimateCumulative(t),
                     reference.EstimateCumulative(t));
  }
}

TEST(FormatStabilityTest, ReadsLegacyPbe2V2) {
  Pbe2Options o;
  o.gamma = 2.0;
  Pbe2 reference(o);
  for (Timestamp t : {1, 2, 3, 7, 9, 14, 20, 21}) reference.Append(t);
  reference.Finalize();

  Pbe2 legacy;
  auto bytes = FromHex(kLegacyPbe2V2);
  BinaryReader r(bytes);
  ASSERT_TRUE(legacy.Deserialize(&r).ok());
  EXPECT_EQ(legacy.TotalCount(), 8u);
  for (Timestamp t = 0; t <= 25; ++t) {
    EXPECT_DOUBLE_EQ(legacy.EstimateCumulative(t),
                     reference.EstimateCumulative(t));
  }
}

TEST(FormatStabilityTest, ReadsLegacyCmPbeV1) {
  Pbe1Options cell;
  cell.buffer_points = 4;
  cell.budget_points = 2;
  CmPbeOptions grid;
  grid.depth = 1;
  grid.width = 2;
  CmPbe<Pbe1> reference(grid, cell);
  for (int i = 0; i < 8; ++i) {
    reference.Append(static_cast<EventId>(i % 3), i + 1);
  }
  reference.Finalize();

  CmPbe<Pbe1> legacy(grid, cell);
  auto bytes = FromHex(kLegacyCmPbeV1);
  BinaryReader r(bytes);
  ASSERT_TRUE(legacy.Deserialize(&r).ok());
  for (EventId e = 0; e < 3; ++e) {
    for (Timestamp t = 0; t <= 10; ++t) {
      EXPECT_DOUBLE_EQ(legacy.EstimateCumulative(e, t),
                       reference.EstimateCumulative(e, t));
    }
  }
}

TEST(FormatStabilityTest, ReadsLegacyEngineV2) {
  BurstEngineOptions<Pbe1> o;
  o.universe_size = 2;
  o.grid.depth = 1;
  o.grid.width = 2;
  o.cell.buffer_points = 4;
  o.cell.budget_points = 2;
  BurstEngine1 reference(o);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(reference.Append(static_cast<EventId>(i % 2), i + 1).ok());
  }
  reference.Finalize();

  BurstEngine1 legacy(o);
  auto bytes = FromHex(kLegacyEngineV2);
  BinaryReader r(bytes);
  ASSERT_TRUE(legacy.Deserialize(&r).ok());
  EXPECT_EQ(legacy.TotalCount(), 6u);
  EXPECT_TRUE(legacy.finalized());
  for (EventId e = 0; e < 2; ++e) {
    for (Timestamp t = 0; t <= 8; ++t) {
      EXPECT_DOUBLE_EQ(legacy.PointQuery(e, t, 2),
                       reference.PointQuery(e, t, 2));
      EXPECT_DOUBLE_EQ(legacy.CumulativeQuery(e, t),
                       reference.CumulativeQuery(e, t));
    }
  }
}

TEST(FormatStabilityTest, RoundTripPinnedPbe1Payload) {
  // A full payload frozen from the current writer; deserializing it
  // must keep working verbatim in future versions.
  Pbe1Options o;
  o.buffer_points = 4;
  o.budget_points = 2;
  Pbe1 original(o);
  for (Timestamp t : {1, 1, 3, 6, 10, 15, 15, 21}) original.Append(t);
  original.Finalize();
  BinaryWriter w;
  original.Serialize(&w);

  Pbe1 reread;
  BinaryReader r(w.bytes());
  ASSERT_TRUE(reread.Deserialize(&r).ok());
  EXPECT_EQ(reread.TotalCount(), 8u);
  for (Timestamp t = 0; t <= 25; ++t) {
    EXPECT_DOUBLE_EQ(reread.EstimateCumulative(t),
                     original.EstimateCumulative(t));
  }
}

}  // namespace
}  // namespace bursthist
