// Unit + statistical tests for the synthetic workload generators.

#include <gtest/gtest.h>

#include <cmath>

#include "gen/rate_curve.h"
#include "gen/scenarios.h"
#include "stream/frequency_curve.h"

namespace bursthist {
namespace {

TEST(RatePrimitiveTest, IntegralOfShapes) {
  RatePrimitive flat{0, 0, 10, 10, 2.0};
  EXPECT_DOUBLE_EQ(flat.Integral(), 20.0);
  RatePrimitive tri{0, 5, 5, 10, 2.0};
  EXPECT_DOUBLE_EQ(tri.Integral(), 10.0);
  RatePrimitive trap{0, 2, 8, 10, 1.0};
  EXPECT_DOUBLE_EQ(trap.Integral(), 8.0);
}

TEST(RatePrimitiveTest, RateAtShape) {
  RatePrimitive trap{0, 4, 8, 12, 2.0};
  EXPECT_DOUBLE_EQ(trap.RateAt(-1), 0.0);
  EXPECT_DOUBLE_EQ(trap.RateAt(0), 0.0);
  EXPECT_DOUBLE_EQ(trap.RateAt(2), 1.0);
  EXPECT_DOUBLE_EQ(trap.RateAt(4), 2.0);
  EXPECT_DOUBLE_EQ(trap.RateAt(6), 2.0);
  EXPECT_DOUBLE_EQ(trap.RateAt(10), 1.0);
  EXPECT_DOUBLE_EQ(trap.RateAt(12), 0.0);
}

TEST(RatePrimitiveTest, SampleStaysInSupport) {
  RatePrimitive trap{100, 120, 180, 220, 1.5};
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    const double t = trap.Sample(&rng);
    EXPECT_GE(t, 100.0);
    EXPECT_LE(t, 220.0);
  }
}

TEST(RateCurveTest, NormalizeTo) {
  RateCurve c;
  c.AddConstant(0, 100, 1.0);
  c.AddBurst(10, 20, 30, 40, 3.0);
  c.NormalizeTo(5000.0);
  EXPECT_NEAR(c.Integral(), 5000.0, 1e-9);
}

TEST(RateCurveTest, SampleCountMatchesIntegral) {
  RateCurve c;
  c.AddConstant(0, 1000, 5.0);  // expect 5000 arrivals
  Rng rng(7);
  auto s = c.Sample(&rng);
  EXPECT_NEAR(static_cast<double>(s.size()), 5000.0, 4.0 * std::sqrt(5000.0));
  // Sorted with all times in support.
  for (size_t i = 1; i < s.times().size(); ++i) {
    EXPECT_LE(s.times()[i - 1], s.times()[i]);
  }
  EXPECT_GE(s.times().front(), 0);
  EXPECT_LT(s.times().back(), 1000);
}

TEST(RateCurveTest, EmptyCurveSamplesNothing) {
  RateCurve c;
  Rng rng(9);
  EXPECT_TRUE(c.Sample(&rng).empty());
  c.AddConstant(5, 5, 3.0);  // zero-width: ignored
  EXPECT_TRUE(c.Sample(&rng).empty());
}

TEST(RateCurveTest, SampleDensityTracksRate) {
  RateCurve c;
  c.AddConstant(0, 100, 1.0);
  c.AddConstant(100, 200, 4.0);
  c.NormalizeTo(50000.0);
  Rng rng(11);
  auto s = c.Sample(&rng);
  const double low = static_cast<double>(s.Frequency(0, 99));
  const double high = static_cast<double>(s.Frequency(100, 199));
  EXPECT_NEAR(high / low, 4.0, 0.3);
}

TEST(ZipfWeightsTest, NormalizedAndDecreasing) {
  auto w = ZipfWeights(100, 1.1);
  double total = 0.0;
  for (size_t i = 0; i < w.size(); ++i) {
    total += w[i];
    if (i > 0) {
      EXPECT_LT(w[i], w[i - 1]);
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(ScenarioTest, SoccerShape) {
  ScenarioConfig cfg;
  cfg.scale = 0.02;  // ~20k arrivals: fast but statistically stable
  auto s = MakeSoccer(cfg);
  EXPECT_NEAR(static_cast<double>(s.size()), 20000.0, 1000.0);
  EXPECT_GE(s.times().front(), 0);
  EXPECT_LT(s.times().back(), kOlympicHorizon);

  // The biggest daily burstiness (tau = 1 day) lands near the final
  // (day 20), as in Figure 7b.
  const Timestamp tau = kSecondsPerDay;
  Burstiness best = 0;
  Timestamp best_day = 0;
  for (Timestamp d = 1; d <= 31; ++d) {
    const Burstiness b = s.BurstinessAt(d * kSecondsPerDay, tau);
    if (b > best) {
      best = b;
      best_day = d;
    }
  }
  EXPECT_GE(best_day, 19);
  EXPECT_LE(best_day, 21);
  EXPECT_GT(best, 0);
}

TEST(ScenarioTest, SwimmingQuietAfterFirstHalf) {
  ScenarioConfig cfg;
  cfg.scale = 0.02;
  auto s = MakeSwimming(cfg);
  const Count first_half = s.Frequency(0, 11 * kSecondsPerDay);
  const Count second_half =
      s.Frequency(11 * kSecondsPerDay + 1, kOlympicHorizon);
  EXPECT_GT(first_half, 20 * second_half);
}

TEST(ScenarioTest, DeterministicForSeed) {
  ScenarioConfig cfg;
  cfg.scale = 0.005;
  auto a = MakeSoccer(cfg);
  auto b = MakeSoccer(cfg);
  EXPECT_EQ(a.times(), b.times());
  cfg.seed = 43;
  auto c = MakeSoccer(cfg);
  EXPECT_NE(a.times(), c.times());
}

TEST(ScenarioTest, OlympicRioComposition) {
  ScenarioConfig cfg;
  cfg.scale = 0.002;  // ~10k records
  auto ds = MakeOlympicRio(cfg);
  EXPECT_EQ(ds.name, "olympicrio");
  EXPECT_EQ(ds.universe_size, 864u);
  EXPECT_NEAR(static_cast<double>(ds.stream.size()), 5032975.0 * 0.002,
              0.1 * 5032975.0 * 0.002);
  EXPECT_LT(ds.stream.MaxTime(), kOlympicHorizon);
  // Timestamps are ordered (MergeStreams contract).
  const auto& recs = ds.stream.records();
  for (size_t i = 1; i < recs.size(); ++i) {
    EXPECT_LE(recs[i - 1].time, recs[i].time);
  }
  // Soccer (id 0) is among the most popular events.
  EXPECT_GT(ds.stream.Project(0).size(), ds.stream.size() / 100);
}

TEST(ScenarioTest, UsPoliticsComposition) {
  ScenarioConfig cfg;
  cfg.scale = 0.002;  // ~10k records
  auto ds = MakeUsPolitics(cfg);
  EXPECT_EQ(ds.universe_size, 1689u);
  EXPECT_EQ(ds.category.size(), 1689u);
  for (int c : ds.category) EXPECT_TRUE(c == 0 || c == 1);
  EXPECT_LT(ds.stream.MaxTime(), kPoliticsHorizon);
  // Both parties must be represented.
  int dem = 0, rep = 0;
  for (int c : ds.category) (c == 0 ? dem : rep)++;
  EXPECT_GT(dem, 100);
  EXPECT_GT(rep, 100);
}

}  // namespace
}  // namespace bursthist
