// Parameterized CM-PBE grid sweep: invariants across grid shapes,
// estimators, and cell types.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>

#include "core/cm_pbe.h"
#include "core/exact_store.h"
#include "util/random.h"

namespace bursthist {
namespace {

struct GridParam {
  size_t depth;
  size_t width;
  CmEstimator estimator;
  uint64_t seed;
};

EventStream MixedStream(EventId k, size_t n, uint64_t seed) {
  Rng rng(seed);
  EventStream s;
  Timestamp t = 0;
  for (size_t i = 0; i < n; ++i) {
    t += static_cast<Timestamp>(rng.NextBelow(3));
    EventId e = static_cast<EventId>(rng.NextBelow(k));
    if (rng.NextDouble() < 0.4) e = static_cast<EventId>(rng.NextBelow(4));
    s.Append(e, t);
  }
  return s;
}

class CmPbeGridSweep : public ::testing::TestWithParam<GridParam> {
 protected:
  static constexpr EventId kUniverse = 40;
  static constexpr size_t kRecords = 12000;

  CmPbeOptions Grid() const {
    CmPbeOptions g;
    g.depth = GetParam().depth;
    g.width = GetParam().width;
    g.estimator = GetParam().estimator;
    g.seed = GetParam().seed;
    return g;
  }

  Pbe1Options Cell() const {
    Pbe1Options c;
    c.buffer_points = 128;
    c.budget_points = 64;
    return c;
  }
};

TEST_P(CmPbeGridSweep, CumulativeRespectsMergeUpperBound) {
  // Every row's cell curve dominates the queried event's true curve
  // up to the cell's own Delta; the combined estimate must never fall
  // below truth by more than the total per-buffer Delta, and the MIN
  // estimator must never exceed the merged stream total.
  auto stream = MixedStream(kUniverse, kRecords, GetParam().seed ^ 0xc1);
  ExactBurstStore exact(kUniverse);
  ASSERT_TRUE(exact.AppendStream(stream).ok());
  CmPbe<Pbe1> cm(Grid(), Cell());
  for (const auto& r : stream.records()) cm.Append(r.id, r.time);
  cm.Finalize();

  Rng qrng(GetParam().seed ^ 0xc2);
  for (int i = 0; i < 100; ++i) {
    const EventId e = static_cast<EventId>(qrng.NextBelow(kUniverse));
    const Timestamp t =
        static_cast<Timestamp>(qrng.NextBelow(stream.MaxTime() + 1));
    const double est = cm.EstimateCumulative(e, t);
    const double truth =
        static_cast<double>(exact.CumulativeFrequency(e, t));
    // Lower side: cell PBE undershoot only (merged curves dominate
    // the event's own curve). Generous envelope via cell guarantees.
    EXPECT_GE(est, truth - 2000.0) << "e=" << e << " t=" << t;
    // Upper side: nothing exceeds the whole stream.
    EXPECT_LE(est, static_cast<double>(stream.size()) + 1e-6);
  }
}

TEST_P(CmPbeGridSweep, MinEstimatorDominatedByMedian) {
  // min over rows <= lower-median over rows, always.
  auto stream = MixedStream(kUniverse, kRecords, GetParam().seed ^ 0xc3);
  CmPbeOptions min_grid = Grid();
  min_grid.estimator = CmEstimator::kMin;
  CmPbeOptions med_grid = Grid();
  med_grid.estimator = CmEstimator::kMedian;
  CmPbe<Pbe1> mins(min_grid, Cell());
  CmPbe<Pbe1> med(med_grid, Cell());
  for (const auto& r : stream.records()) {
    mins.Append(r.id, r.time);
    med.Append(r.id, r.time);
  }
  mins.Finalize();
  med.Finalize();
  Rng qrng(GetParam().seed ^ 0xc4);
  for (int i = 0; i < 100; ++i) {
    const EventId e = static_cast<EventId>(qrng.NextBelow(kUniverse));
    const Timestamp t =
        static_cast<Timestamp>(qrng.NextBelow(stream.MaxTime() + 1));
    EXPECT_LE(mins.EstimateCumulative(e, t),
              med.EstimateCumulative(e, t) + 1e-9);
  }
}

TEST_P(CmPbeGridSweep, DeterministicAcrossRebuilds) {
  auto stream = MixedStream(kUniverse, 4000, GetParam().seed ^ 0xc5);
  CmPbe<Pbe1> a(Grid(), Cell()), b(Grid(), Cell());
  for (const auto& r : stream.records()) {
    a.Append(r.id, r.time);
    b.Append(r.id, r.time);
  }
  a.Finalize();
  b.Finalize();
  for (EventId e = 0; e < kUniverse; e += 3) {
    EXPECT_DOUBLE_EQ(a.EstimateCumulative(e, stream.MaxTime()),
                     b.EstimateCumulative(e, stream.MaxTime()));
  }
}

TEST_P(CmPbeGridSweep, SerializationPreservesEverything) {
  auto stream = MixedStream(kUniverse, 6000, GetParam().seed ^ 0xc6);
  CmPbe<Pbe1> cm(Grid(), Cell());
  for (const auto& r : stream.records()) cm.Append(r.id, r.time);
  cm.Finalize();
  BinaryWriter w;
  cm.Serialize(&w);
  CmPbe<Pbe1> back(Grid(), Cell());
  BinaryReader r(w.bytes());
  ASSERT_TRUE(back.Deserialize(&r).ok());
  Rng qrng(GetParam().seed ^ 0xc7);
  for (int i = 0; i < 60; ++i) {
    const EventId e = static_cast<EventId>(qrng.NextBelow(kUniverse));
    const Timestamp t =
        static_cast<Timestamp>(qrng.NextBelow(stream.MaxTime() + 1));
    EXPECT_DOUBLE_EQ(back.EstimateCumulative(e, t),
                     cm.EstimateCumulative(e, t));
  }
}

std::vector<GridParam> GridParams() {
  return {
      {1, 1, CmEstimator::kMedian, 11},
      {1, 16, CmEstimator::kMin, 12},
      {2, 55, CmEstimator::kMedian, 13},   // the paper's sizing
      {2, 55, CmEstimator::kMin, 14},
      {3, 8, CmEstimator::kMedian, 15},
      {4, 64, CmEstimator::kMedian, 16},
      {5, 32, CmEstimator::kMin, 17},
      {7, 128, CmEstimator::kMedian, 18},
  };
}

std::string GridName(const ::testing::TestParamInfo<GridParam>& info) {
  return "d" + std::to_string(info.param.depth) + "w" +
         std::to_string(info.param.width) +
         (info.param.estimator == CmEstimator::kMin ? "min" : "med");
}

INSTANTIATE_TEST_SUITE_P(Shapes, CmPbeGridSweep,
                         ::testing::ValuesIn(GridParams()), GridName);

}  // namespace
}  // namespace bursthist
