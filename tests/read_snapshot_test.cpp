// ReadSnapshot / live-query correctness: queries on an unfinalized
// engine must cover every accepted record (the silent-buffer-omission
// bugfix), AcquireSnapshot() must publish immutable views whose
// answers are byte-identical to a quiesced Finalize()d engine over the
// same records, and concurrent appenders + snapshot readers must be
// race-free (run under -DBURSTHIST_SANITIZE=thread; labeled tsan).

#include "core/read_snapshot.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/burst_engine.h"
#include "differential/diff_harness.h"
#include "test_util.h"
#include "util/serialize.h"

namespace bursthist {
namespace {

BurstEngineOptions<Pbe1> SmallOptions(EventId universe,
                                      Timestamp max_lateness = 0) {
  BurstEngineOptions<Pbe1> o;
  o.universe_size = universe;
  o.max_lateness = max_lateness;
  return o;
}

std::vector<uint8_t> SerializedBytes(const BurstEngine<Pbe1>& engine) {
  BinaryWriter w;
  engine.Serialize(&w);
  return w.bytes();
}

// The bug this PR fixes: with a lateness window, recent records sit in
// the re-order buffer, and a live query used to silently omit them.
TEST(LiveQuery, CoversBufferedRecords) {
  BurstEngine<Pbe1> engine(SmallOptions(4, /*max_lateness=*/100));
  for (Timestamp t = 10; t < 20; ++t) {
    ASSERT_TRUE(engine.Append(1, t).ok());
  }
  // Nothing is ripe yet (watermark 19, lateness 100): every record is
  // still buffered.
  ASSERT_EQ(engine.TotalCount(), 0u);
  ASSERT_EQ(engine.BufferedCount(), 10u);

  // A quiesced engine over the same records is the ground truth.
  BurstEngine<Pbe1> quiesced(SmallOptions(4, 100));
  for (Timestamp t = 10; t < 20; ++t) {
    ASSERT_TRUE(quiesced.Append(1, t).ok());
  }
  quiesced.Finalize();

  const Timestamp tau = 5;
  for (Timestamp t : {9, 12, 15, 19, 25}) {
    EXPECT_EQ(engine.PointQuery(1, t, tau), quiesced.PointQuery(1, t, tau))
        << "t=" << t;
    EXPECT_EQ(engine.CumulativeQuery(1, t), quiesced.CumulativeQuery(1, t));
  }
  EXPECT_EQ(engine.BurstyTimeQuery(1, 1.0, tau),
            quiesced.BurstyTimeQuery(1, 1.0, tau));
  EXPECT_EQ(engine.BurstyEventQuery(15, 1.0, tau),
            quiesced.BurstyEventQuery(15, 1.0, tau));
  EXPECT_EQ(engine.TopKBurstyEvents(15, 2, tau),
            quiesced.TopKBurstyEvents(15, 2, tau));

  // Serving the query did not disturb the live engine.
  EXPECT_FALSE(engine.finalized());
  EXPECT_EQ(engine.BufferedCount(), 10u);
  ASSERT_TRUE(engine.Append(2, 19).ok());  // still appendable
}

TEST(LiveQuery, TracksSubsequentAppends) {
  BurstEngine<Pbe1> engine(SmallOptions(4, 100));
  ASSERT_TRUE(engine.Append(0, 10).ok());
  const double before = engine.PointQuery(0, 10, 5);
  EXPECT_EQ(before, 1.0);
  ASSERT_TRUE(engine.Append(0, 10).ok());
  EXPECT_EQ(engine.PointQuery(0, 10, 5), 2.0)
      << "cached view must refresh after an append";
}

TEST(LiveQuery, FrequencyQueryReversedRangeIsZero) {
  auto options = SmallOptions(4);
  options.cell.buffer_points = 256;
  options.cell.budget_points = 256;  // lossless: ranges are exact
  BurstEngine<Pbe1> engine(options);
  for (Timestamp t = 1; t <= 8; ++t) {
    ASSERT_TRUE(engine.Append(0, t).ok());
  }
  EXPECT_GT(engine.FrequencyQuery(0, 2, 6), 0.0);
  EXPECT_EQ(engine.FrequencyQuery(0, 6, 2), 0.0);
  engine.Finalize();
  EXPECT_EQ(engine.FrequencyQuery(0, 6, 2), 0.0);
  EXPECT_EQ(engine.FrequencyQuery(0, 100, -100), 0.0);
}

TEST(ReadSnapshot, CarriesWatermarkAndBound) {
  BurstEngine<Pbe1> engine(SmallOptions(4, 50));
  for (Timestamp t = 0; t < 30; ++t) {
    ASSERT_TRUE(engine.Append(0, t).ok());
  }
  auto snap = engine.AcquireSnapshot(/*sequence=*/30);
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->watermark(), 29);
  EXPECT_EQ(snap->sequence(), 30u);
  EXPECT_EQ(snap->total_count(), 30u);  // buffered records included

  const auto ans = snap->Point(0, 20, 5);
  EXPECT_EQ(ans.watermark, 29);
  EXPECT_EQ(ans.bound.point_bound, snap->bound().point_bound);
  // The view is finalized, so its bound equals a quiesced engine's.
  EXPECT_EQ(snap->bound().point_bound,
            engine.EffectiveAnswerBound().point_bound);
}

TEST(ReadSnapshot, ImmutableWhileAppendsContinue) {
  BurstEngine<Pbe1> engine(SmallOptions(4, 0));
  for (Timestamp t = 0; t < 16; ++t) {
    ASSERT_TRUE(engine.Append(0, t).ok());
  }
  auto snap = engine.AcquireSnapshot();
  const double frozen = snap->Point(0, 15, 4).value;
  const Count frozen_total = snap->total_count();

  // The live engine moves on; the snapshot must not.
  for (Timestamp t = 16; t < 64; ++t) {
    ASSERT_TRUE(engine.Append(0, t).ok());
  }
  EXPECT_EQ(snap->Point(0, 15, 4).value, frozen);
  EXPECT_EQ(snap->total_count(), frozen_total);
  EXPECT_EQ(snap->watermark(), 15);

  // A fresh snapshot sees the new records.
  auto snap2 = engine.AcquireSnapshot();
  EXPECT_EQ(snap2->total_count(), 64u);
  EXPECT_EQ(snap2->watermark(), 63);
}

TEST(ReadSnapshot, SlotPublishAndCurrent) {
  BurstEngine<Pbe1> engine(SmallOptions(4));
  SnapshotSlot<ReadSnapshot<Pbe1>> slot;
  EXPECT_EQ(slot.Current(), nullptr);
  ASSERT_TRUE(engine.Append(0, 1).ok());
  auto snap = engine.AcquireSnapshot(1);
  slot.Publish(snap);
  EXPECT_EQ(slot.Current(), snap);
}

// The differential check the issue asks for: snapshot state must be
// byte-identical (serialized engine payload) to a quiesced
// Finalize()d engine fed the same records, across stream families —
// and so must every query answer.
TEST(ReadSnapshotDifferential, ByteIdenticalToQuiescedClone) {
  using test::StreamFamily;
  using test::StreamSpec;
  for (StreamFamily family :
       {StreamFamily::kUniform, StreamFamily::kBursty,
        StreamFamily::kDuplicates, StreamFamily::kOutOfOrder}) {
    StreamSpec spec;
    spec.family = family;
    spec.universe = 8;
    spec.n = 240;
    spec.seed = test::TestSeed();
    spec.max_lateness = 12;
    const auto arrivals = test::GenerateArrivals(spec);
    const Timestamp lateness =
        family == StreamFamily::kOutOfOrder ? spec.max_lateness : 0;

    BurstEngine<Pbe1> live(SmallOptions(spec.universe, lateness));
    size_t fed = 0;
    for (size_t cut : {spec.n / 3, spec.n / 2, spec.n}) {
      for (; fed < cut; ++fed) {
        ASSERT_TRUE(live.Append(arrivals[fed].id, arrivals[fed].time).ok());
      }
      auto snap = live.AcquireSnapshot(cut);

      BurstEngine<Pbe1> quiesced(SmallOptions(spec.universe, lateness));
      for (size_t i = 0; i < cut; ++i) {
        ASSERT_TRUE(quiesced.Append(arrivals[i].id, arrivals[i].time).ok());
      }
      quiesced.Finalize();

      EXPECT_EQ(SerializedBytes(snap->engine()), SerializedBytes(quiesced))
          << test::FamilyName(family) << " cut=" << cut;
      EXPECT_EQ(snap->watermark(), quiesced.Watermark());
      EXPECT_EQ(snap->bound().point_bound,
                quiesced.EffectivePointBound().point_bound);

      const Timestamp w = snap->watermark();
      for (EventId e = 0; e < spec.universe; ++e) {
        for (Timestamp tau : {1, 4, 16}) {
          EXPECT_EQ(snap->Point(e, w, tau).value,
                    quiesced.PointQuery(e, w, tau))
              << test::FamilyName(family) << " e=" << e << " tau=" << tau;
          EXPECT_EQ(snap->BurstyTime(e, 2.0, tau).value,
                    quiesced.BurstyTimeQuery(e, 2.0, tau));
        }
        EXPECT_EQ(snap->Cumulative(e, w).value, quiesced.CumulativeQuery(e, w));
      }
      for (Timestamp tau : {1, 4, 16}) {
        EXPECT_EQ(snap->BurstyEvent(w, 2.0, tau).value,
                  quiesced.BurstyEventQuery(w, 2.0, tau));
        EXPECT_EQ(snap->TopK(w, 3, tau).value,
                  quiesced.TopKBurstyEvents(w, 3, tau));
        EXPECT_EQ(snap->FrequentBurstyEvent(w, 2.0, tau, 1.0).value,
                  quiesced.FrequentBurstyEventQuery(w, 2.0, tau, 1.0));
      }
    }
  }
}

// Live value queries must agree with the snapshot taken at the same
// instant — same code path, so exact equality.
TEST(ReadSnapshotDifferential, LiveQueriesMatchSnapshot) {
  test::StreamSpec spec;
  spec.family = test::StreamFamily::kOutOfOrder;
  spec.universe = 6;
  spec.n = 160;
  spec.seed = test::TestSeed() + 1;
  spec.max_lateness = 8;
  const auto arrivals = test::GenerateArrivals(spec);

  BurstEngine<Pbe1> engine(SmallOptions(spec.universe, spec.max_lateness));
  for (const auto& r : arrivals) {
    ASSERT_TRUE(engine.Append(r.id, r.time).ok());
  }
  auto snap = engine.AcquireSnapshot();
  const Timestamp w = snap->watermark();
  for (EventId e = 0; e < spec.universe; ++e) {
    for (Timestamp tau : {1, 3, 9}) {
      EXPECT_EQ(engine.PointQuery(e, w, tau), snap->Point(e, w, tau).value);
    }
  }
  EXPECT_EQ(engine.BurstyEventQuery(w, 1.5, 3),
            snap->BurstyEvent(w, 1.5, 3).value);
}

// Concurrency: one writer appending and publishing snapshots, many
// readers querying whatever is current. Run under tsan to prove the
// publication scheme is race-free; the assertions here check the
// views stay coherent (watermark monotone per reader, answers from a
// view never change).
TEST(ReadSnapshotConcurrency, AppendersAndReaders) {
  constexpr int kReaders = 4;
  constexpr Timestamp kEnd = 400;
  BurstEngine<Pbe1> engine(SmallOptions(8, /*max_lateness=*/16));
  SnapshotSlot<ReadSnapshot<Pbe1>> slot;
  slot.Publish(engine.AcquireSnapshot(0));
  std::atomic<bool> done{false};

  std::thread writer([&] {
    for (Timestamp t = 0; t < kEnd; ++t) {
      ASSERT_TRUE(engine.Append(static_cast<EventId>(t % 8), t).ok());
      if (t % 7 == 0) {
        slot.Publish(engine.AcquireSnapshot(static_cast<uint64_t>(t + 1)));
      }
    }
    slot.Publish(engine.AcquireSnapshot(kEnd));
    done.store(true, std::memory_order_release);
  });

  std::vector<std::thread> readers;
  for (int i = 0; i < kReaders; ++i) {
    readers.emplace_back([&, i] {
      Timestamp last_watermark = -1;
      uint64_t last_sequence = 0;
      while (!done.load(std::memory_order_acquire)) {
        auto snap = slot.Current();
        ASSERT_NE(snap, nullptr);
        // Publication is ordered: a reader can never go back in time.
        EXPECT_GE(snap->watermark(), last_watermark);
        EXPECT_GE(snap->sequence(), last_sequence);
        last_watermark = snap->watermark();
        last_sequence = snap->sequence();

        const EventId e = static_cast<EventId>(i % 8);
        const Timestamp w = snap->watermark();
        const auto a1 = snap->Point(e, w, 4);
        const auto a2 = snap->Point(e, w, 4);
        EXPECT_EQ(a1.value, a2.value) << "immutable view changed an answer";
        EXPECT_EQ(a1.watermark, w);
        (void)snap->BurstyEvent(w, 2.0, 4);
        (void)snap->TopK(w, 2, 4);
        (void)snap->BurstyTime(e, 2.0, 4);
      }
    });
  }
  writer.join();
  for (auto& r : readers) r.join();

  // Final published view covers everything.
  auto final_snap = slot.Current();
  EXPECT_EQ(final_snap->total_count(), static_cast<Count>(kEnd));
  EXPECT_EQ(final_snap->watermark(), kEnd - 1);
}

}  // namespace
}  // namespace bursthist
