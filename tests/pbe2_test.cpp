// Unit + property tests for PBE-2 (Section III-B).

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/pbe2.h"
#include "stream/event_stream.h"
#include "util/random.h"

namespace bursthist {
namespace {

SingleEventStream RandomStream(size_t n, Rng* rng, Timestamp max_gap = 5) {
  std::vector<Timestamp> times;
  times.reserve(n);
  Timestamp t = 0;
  for (size_t i = 0; i < n; ++i) {
    t += static_cast<Timestamp>(rng->NextBelow(max_gap + 1));
    times.push_back(t);
  }
  return SingleEventStream(std::move(times));
}

Pbe2 BuildPbe2(const SingleEventStream& s, double gamma) {
  Pbe2Options opt;
  opt.gamma = gamma;
  Pbe2 pbe(opt);
  for (Timestamp t : s.times()) pbe.Append(t);
  pbe.Finalize();
  return pbe;
}

TEST(Pbe2Test, BandInvariantEndToEnd) {
  Rng rng(21);
  for (double gamma : {0.0, 2.0, 8.0}) {
    auto s = RandomStream(1500, &rng);
    Pbe2 pbe = BuildPbe2(s, gamma);
    for (Timestamp t = 0; t <= s.times().back() + 3; ++t) {
      const double exact = static_cast<double>(s.CumulativeFrequency(t));
      const double est = pbe.EstimateCumulative(t);
      EXPECT_LE(est, exact + 1e-6) << "gamma=" << gamma << " t=" << t;
      EXPECT_GE(est, exact - gamma - 1e-6) << "gamma=" << gamma << " t=" << t;
    }
  }
}

TEST(Pbe2Test, BurstinessWithin4Gamma) {
  Rng rng(23);
  const double gamma = 5.0;
  auto s = RandomStream(2000, &rng);
  Pbe2 pbe = BuildPbe2(s, gamma);
  for (Timestamp tau : {4, 25, 150}) {
    for (Timestamp t = 0; t <= s.times().back() + 2 * tau; t += 9) {
      const double exact = static_cast<double>(s.BurstinessAt(t, tau));
      EXPECT_LE(std::abs(pbe.EstimateBurstiness(t, tau) - exact),
                4.0 * gamma + 1e-6)
          << "t=" << t << " tau=" << tau;
    }
  }
}

TEST(Pbe2Test, DuplicateTimestampsMerge) {
  Pbe2Options opt;
  opt.gamma = 0.0;
  Pbe2 pbe(opt);
  pbe.Append(4);
  pbe.Append(4, 2);
  pbe.Append(10);
  pbe.Append(10);
  pbe.Finalize();
  EXPECT_EQ(pbe.TotalCount(), 5u);
  EXPECT_NEAR(pbe.EstimateCumulative(4), 3.0, 1e-9);
  EXPECT_NEAR(pbe.EstimateCumulative(10), 5.0, 1e-9);
  EXPECT_NEAR(pbe.EstimateCumulative(9), 3.0, 1e-9);  // flat stretch
}

TEST(Pbe2Test, LargerGammaFewerSegmentsLessSpace) {
  Rng rng(25);
  auto s = RandomStream(5000, &rng);
  size_t prev_segments = ~size_t{0};
  for (double gamma : {1.0, 4.0, 16.0, 64.0}) {
    Pbe2 pbe = BuildPbe2(s, gamma);
    EXPECT_LE(pbe.SegmentCount(), prev_segments) << "gamma=" << gamma;
    prev_segments = pbe.SegmentCount();
  }
}

TEST(Pbe2Test, SpaceBelowExactStream) {
  Rng rng(27);
  auto s = RandomStream(20000, &rng, /*max_gap=*/3);
  Pbe2 pbe = BuildPbe2(s, 16.0);
  EXPECT_LT(pbe.SizeBytes(), s.SizeBytes() / 4);
}

TEST(Pbe2Test, SnapshotQueriesMidStream) {
  Rng rng(29);
  auto s = RandomStream(1000, &rng);
  Pbe2Options opt;
  opt.gamma = 3.0;
  Pbe2 pbe(opt);
  size_t i = 0;
  for (; i < 600; ++i) pbe.Append(s.times()[i]);
  Pbe2 snap = pbe.Snapshot();
  EXPECT_TRUE(snap.finalized());
  EXPECT_FALSE(pbe.finalized());
  const Timestamp mid = s.times()[599];
  const double est = snap.EstimateCumulative(mid);
  EXPECT_LE(est, 600.0 + 1e-6);
  EXPECT_GE(est, 600.0 - opt.gamma - 1e-6);
  for (; i < s.size(); ++i) pbe.Append(s.times()[i]);
  pbe.Finalize();
  EXPECT_EQ(pbe.TotalCount(), s.size());
}

TEST(Pbe2Test, BreakpointsSortedStrict) {
  Rng rng(31);
  auto s = RandomStream(800, &rng);
  Pbe2 pbe = BuildPbe2(s, 2.0);
  auto bps = pbe.Breakpoints();
  ASSERT_FALSE(bps.empty());
  for (size_t i = 1; i < bps.size(); ++i) EXPECT_GT(bps[i], bps[i - 1]);
}

TEST(Pbe2Test, SerializationRoundTrip) {
  Rng rng(33);
  auto s = RandomStream(1500, &rng);
  Pbe2 pbe = BuildPbe2(s, 4.0);
  BinaryWriter w;
  pbe.Serialize(&w);
  Pbe2 back;
  BinaryReader r(w.bytes());
  ASSERT_TRUE(back.Deserialize(&r).ok());
  EXPECT_EQ(back.TotalCount(), pbe.TotalCount());
  EXPECT_EQ(back.SegmentCount(), pbe.SegmentCount());
  for (Timestamp t = 0; t <= s.times().back(); t += 13) {
    EXPECT_DOUBLE_EQ(back.EstimateCumulative(t), pbe.EstimateCumulative(t));
  }
}

TEST(Pbe2Test, CorruptPayloadRejected) {
  BinaryWriter w;
  w.Put<uint32_t>(0x12345678);
  Pbe2 pbe;
  BinaryReader r(w.bytes());
  EXPECT_FALSE(pbe.Deserialize(&r).ok());
}

TEST(Pbe2Test, EmptyStreamFinalizes) {
  Pbe2 pbe;
  pbe.Finalize();
  EXPECT_EQ(pbe.EstimateCumulative(10), 0.0);
  EXPECT_EQ(pbe.EstimateBurstiness(10, 2), 0.0);
  EXPECT_TRUE(pbe.Breakpoints().empty());
}

TEST(Pbe2Test, BurstyStepFunctionTracked) {
  // A flat -> burst -> flat pattern: the estimate must see the jump.
  Pbe2Options opt;
  opt.gamma = 2.0;
  Pbe2 pbe(opt);
  Count n = 0;
  for (Timestamp t = 0; t < 100; t += 10) pbe.Append(t), ++n;
  for (Timestamp t = 100; t < 120; ++t) {
    pbe.Append(t, 50);
    n += 50;
  }
  for (Timestamp t = 120; t < 220; t += 10) pbe.Append(t), ++n;
  pbe.Finalize();
  const double before = pbe.EstimateBurstiness(95, 20);
  const double during = pbe.EstimateBurstiness(119, 20);
  EXPECT_GT(during, before + 500.0);
}

}  // namespace
}  // namespace bursthist
