// Recovery subsystem tests: WAL framing/rotation/torn tails, atomic
// snapshot files, and DurableBurstEngine checkpoint + reopen.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/burst_engine.h"
#include "recovery/durable_engine.h"
#include "recovery/fault_env.h"
#include "recovery/snapshot.h"
#include "recovery/wal.h"
#include "util/env.h"
#include "util/random.h"

namespace bursthist {
namespace {

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = Env::Default();
    dir_ = testing::TempDir() + "/bursthist_recovery_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    ASSERT_TRUE(env_->CreateDirIfMissing(dir_).ok());
  }

  void TearDown() override {
    auto names = env_->ListDir(dir_);
    if (names.ok()) {
      for (const auto& n : names.value()) (void)env_->DeleteFile(dir_ + "/" + n);
    }
    ::rmdir(dir_.c_str());
  }

  Env* env_ = nullptr;
  std::string dir_;
};

std::vector<uint8_t> Payload(std::initializer_list<uint8_t> bytes) {
  return std::vector<uint8_t>(bytes);
}

// Replays everything from `from` into a flat list of payloads.
Result<WalReplayResult> Replay(Env* env, const std::string& dir,
                               const WalPosition& from,
                               std::vector<std::vector<uint8_t>>* out) {
  return ReplayWal(env, dir, from,
                   [out](WalRecordType type, const uint8_t* p, size_t n,
                         const WalPosition&) {
                     EXPECT_EQ(type, WalRecordType::kEvent);
                     out->emplace_back(p, p + n);
                     return Status::OK();
                   });
}

TEST_F(RecoveryTest, WalRoundTrip) {
  WalWriter::Options o;
  auto writer = WalWriter::Open(env_, dir_, 1, o);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  std::vector<std::vector<uint8_t>> in = {
      Payload({1, 2, 3}), Payload({}), Payload({0xff, 0x00, 0x7f, 0x80})};
  for (const auto& p : in) {
    ASSERT_TRUE(writer.value()->AddRecord(WalRecordType::kEvent, p).ok());
  }
  ASSERT_TRUE(writer.value()->Sync().ok());

  std::vector<std::vector<uint8_t>> out;
  auto replay = Replay(env_, dir_, WalPosition{1, 0}, &out);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(out, in);
  EXPECT_FALSE(replay.value().tail_torn);
  EXPECT_EQ(replay.value().records, in.size());
  EXPECT_EQ(replay.value().end, writer.value()->position());
}

TEST_F(RecoveryTest, WalRotatesSegments) {
  WalWriter::Options o;
  o.segment_bytes = 64;  // tiny: a few records per segment
  auto writer = WalWriter::Open(env_, dir_, 1, o);
  ASSERT_TRUE(writer.ok());
  std::vector<std::vector<uint8_t>> in;
  for (uint8_t i = 0; i < 20; ++i) {
    in.push_back(Payload({i, i, i, i, i, i, i, i}));
    ASSERT_TRUE(writer.value()->AddRecord(WalRecordType::kEvent, in.back()).ok());
  }
  auto seqs = ListWalSegments(env_, dir_);
  ASSERT_TRUE(seqs.ok());
  EXPECT_GT(seqs.value().size(), 2u) << "rotation never happened";

  std::vector<std::vector<uint8_t>> out;
  auto replay = Replay(env_, dir_, WalPosition{1, 0}, &out);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(out, in);
}

TEST_F(RecoveryTest, WalTornTailStopsCleanly) {
  WalWriter::Options o;
  auto writer = WalWriter::Open(env_, dir_, 1, o);
  ASSERT_TRUE(writer.ok());
  for (uint8_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        writer.value()->AddRecord(WalRecordType::kEvent, Payload({i})).ok());
  }
  const std::string path = WalSegmentPath(dir_, 1);
  auto size = env_->FileSize(path);
  ASSERT_TRUE(size.ok());

  // Truncate every possible amount into the final record (frame is
  // 9 + 1 bytes): each must replay the first 4 records and flag a torn
  // tail, never an error.
  for (uint64_t cut = 1; cut <= 9; ++cut) {
    SCOPED_TRACE(cut);
    auto bytes = env_->ReadFileBytes(path);
    ASSERT_TRUE(bytes.ok());
    ASSERT_TRUE(TruncateFileTo(env_, path, size.value() - cut).ok());

    std::vector<std::vector<uint8_t>> out;
    auto replay = Replay(env_, dir_, WalPosition{1, 0}, &out);
    ASSERT_TRUE(replay.ok()) << replay.status().ToString();
    EXPECT_TRUE(replay.value().tail_torn);
    EXPECT_EQ(replay.value().records, 4u);

    // Restore for the next iteration.
    auto file = env_->NewWritableFile(path);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(file.value()->Append(bytes.value()).ok());
    ASSERT_TRUE(file.value()->Close().ok());
  }
}

TEST_F(RecoveryTest, WalMidLogCorruptionIsAnError) {
  WalWriter::Options o;
  auto writer = WalWriter::Open(env_, dir_, 1, o);
  ASSERT_TRUE(writer.ok());
  for (uint8_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        writer.value()->AddRecord(WalRecordType::kEvent, Payload({i})).ok());
  }
  // Flip a payload bit in the SECOND record: checksum fails with more
  // log after it, so this is corruption, not a torn tail.
  const std::string path = WalSegmentPath(dir_, 1);
  const uint64_t second_record_payload = kWalHeaderSize + 10 + 9;
  ASSERT_TRUE(FlipBit(env_, path, second_record_payload, 3).ok());

  std::vector<std::vector<uint8_t>> out;
  auto replay = Replay(env_, dir_, WalPosition{1, 0}, &out);
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.status().code(), StatusCode::kCorruption);
}

TEST_F(RecoveryTest, WalMissingStartSegmentIsAnError) {
  WalWriter::Options o;
  auto writer = WalWriter::Open(env_, dir_, 3, o);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(
      writer.value()->AddRecord(WalRecordType::kEvent, Payload({1})).ok());
  // Asking to replay from segment 2 when only 3 exists: the covering
  // segment was pruned out from under us.
  std::vector<std::vector<uint8_t>> out;
  auto replay = Replay(env_, dir_, WalPosition{2, 0}, &out);
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.status().code(), StatusCode::kCorruption);
}

TEST_F(RecoveryTest, SnapshotRoundTrip) {
  std::vector<uint8_t> blob = {9, 8, 7, 6, 5};
  ASSERT_TRUE(
      WriteSnapshotFile(env_, dir_, 7, WalPosition{3, 99}, blob).ok());
  auto gens = ListSnapshots(env_, dir_);
  ASSERT_TRUE(gens.ok());
  ASSERT_EQ(gens.value().size(), 1u);
  EXPECT_EQ(gens.value()[0], 7u);

  auto snap = ReadSnapshotFile(env_, dir_, 7);
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  EXPECT_EQ(snap.value().generation, 7u);
  EXPECT_EQ(snap.value().wal_position, (WalPosition{3, 99}));
  EXPECT_EQ(snap.value().blob, blob);
}

TEST_F(RecoveryTest, SnapshotDetectsAnySingleBitFlip) {
  std::vector<uint8_t> blob(40, 0xab);
  ASSERT_TRUE(WriteSnapshotFile(env_, dir_, 1, WalPosition{1, 16}, blob).ok());
  const std::string path = SnapshotPath(dir_, 1);
  auto size = env_->FileSize(path);
  ASSERT_TRUE(size.ok());
  auto pristine = env_->ReadFileBytes(path);
  ASSERT_TRUE(pristine.ok());

  for (uint64_t off = 0; off < size.value(); ++off) {
    ASSERT_TRUE(FlipBit(env_, path, off, off % 8).ok());
    auto snap = ReadSnapshotFile(env_, dir_, 1);
    EXPECT_FALSE(snap.ok()) << "bit flip at byte " << off << " accepted";
    auto file = env_->NewWritableFile(path);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(file.value()->Append(pristine.value()).ok());
    ASSERT_TRUE(file.value()->Close().ok());
  }
}

BurstEngineOptions<Pbe1> SmallOptions() {
  BurstEngineOptions<Pbe1> o;
  o.universe_size = 16;
  o.grid.depth = 2;
  o.grid.width = 8;
  o.cell.buffer_points = 32;
  o.cell.budget_points = 8;
  o.heavy_hitter_capacity = 4;
  return o;
}

struct Record {
  EventId e;
  Timestamp t;
};

std::vector<Record> Workload(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Record> out;
  Timestamp t = 0;
  for (size_t i = 0; i < n; ++i) {
    t += static_cast<Timestamp>(rng.NextBelow(3));
    out.push_back({static_cast<EventId>(rng.NextBelow(16)), t});
  }
  return out;
}

std::vector<uint8_t> Ser(const BurstEngine1& e) {
  BinaryWriter w;
  e.Serialize(&w);
  return w.TakeBytes();
}

// Reference engine fed the first `n` workload records directly.
BurstEngine1 Reference(const std::vector<Record>& w, size_t n) {
  BurstEngine1 engine(SmallOptions());
  for (size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(engine.Append(w[i].e, w[i].t).ok());
  }
  return engine;
}

TEST_F(RecoveryTest, DurableEngineRecoversFromWalOnly) {
  const auto workload = Workload(200, 21);
  {
    auto durable =
        DurableBurstEngine1::Open(env_, dir_, SmallOptions());
    ASSERT_TRUE(durable.ok()) << durable.status().ToString();
    for (const auto& r : workload) {
      ASSERT_TRUE(durable.value()->Append(r.e, r.t).ok());
    }
    ASSERT_TRUE(durable.value()->Sync().ok());
    // No checkpoint: dropped on the floor, as in a crash.
  }
  auto recovered = RecoverBurstEngine<Pbe1>(env_, dir_, SmallOptions());
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(Ser(recovered.value()), Ser(Reference(workload, workload.size())));
}

TEST_F(RecoveryTest, DurableEngineCheckpointAndTailReplay) {
  const auto workload = Workload(300, 22);
  {
    auto durable = DurableBurstEngine1::Open(env_, dir_, SmallOptions());
    ASSERT_TRUE(durable.ok());
    for (size_t i = 0; i < 150; ++i) {
      ASSERT_TRUE(durable.value()->Append(workload[i].e, workload[i].t).ok());
    }
    ASSERT_TRUE(durable.value()->Checkpoint().ok());
    EXPECT_EQ(durable.value()->generation(), 1u);
    for (size_t i = 150; i < workload.size(); ++i) {
      ASSERT_TRUE(durable.value()->Append(workload[i].e, workload[i].t).ok());
    }
    ASSERT_TRUE(durable.value()->Sync().ok());
  }
  auto recovered = RecoverBurstEngine<Pbe1>(env_, dir_, SmallOptions());
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered.value().TotalCount(), workload.size());
  EXPECT_EQ(Ser(recovered.value()), Ser(Reference(workload, workload.size())));
}

TEST_F(RecoveryTest, CheckpointPrunesOldWalSegments) {
  auto durable = DurableBurstEngine1::Open(env_, dir_, SmallOptions());
  ASSERT_TRUE(durable.ok());
  const auto workload = Workload(100, 23);
  for (const auto& r : workload) {
    ASSERT_TRUE(durable.value()->Append(r.e, r.t).ok());
  }
  ASSERT_TRUE(durable.value()->Checkpoint().ok());
  auto seqs = ListWalSegments(env_, dir_);
  ASSERT_TRUE(seqs.ok());
  // Only the fresh post-rotation segment remains.
  ASSERT_EQ(seqs.value().size(), 1u);
  EXPECT_EQ(seqs.value()[0], durable.value()->wal_position().seq);
}

TEST_F(RecoveryTest, CheckpointRetentionKeepsConfiguredGenerations) {
  DurabilityOptions d;
  d.snapshots_to_keep = 2;
  auto durable = DurableBurstEngine1::Open(env_, dir_, SmallOptions(), d);
  ASSERT_TRUE(durable.ok());
  const auto workload = Workload(120, 24);
  size_t fed = 0;
  for (int round = 0; round < 4; ++round) {
    for (size_t i = 0; i < 30; ++i, ++fed) {
      ASSERT_TRUE(
          durable.value()->Append(workload[fed].e, workload[fed].t).ok());
    }
    ASSERT_TRUE(durable.value()->Checkpoint().ok());
  }
  auto gens = ListSnapshots(env_, dir_);
  ASSERT_TRUE(gens.ok());
  ASSERT_EQ(gens.value().size(), 2u);
  EXPECT_EQ(gens.value()[0], 4u);
  EXPECT_EQ(gens.value()[1], 3u);
}

TEST_F(RecoveryTest, RecoveryFallsBackToPreviousSnapshot) {
  const auto workload = Workload(200, 25);
  DurabilityOptions d;
  d.snapshots_to_keep = 2;
  {
    auto durable = DurableBurstEngine1::Open(env_, dir_, SmallOptions(), d);
    ASSERT_TRUE(durable.ok());
    for (size_t i = 0; i < 100; ++i) {
      ASSERT_TRUE(durable.value()->Append(workload[i].e, workload[i].t).ok());
    }
    ASSERT_TRUE(durable.value()->Checkpoint().ok());
    for (size_t i = 100; i < 200; ++i) {
      ASSERT_TRUE(durable.value()->Append(workload[i].e, workload[i].t).ok());
    }
    ASSERT_TRUE(durable.value()->Checkpoint().ok());
  }
  // Mutilate the newest snapshot; generation 1 plus the surviving WAL
  // tail (pruning retains the log back to the oldest kept snapshot's
  // coverage) must still reconstruct the full history.
  ASSERT_TRUE(FlipBit(env_, SnapshotPath(dir_, 2), 30, 2).ok());
  auto recovered = RecoverBurstEngine<Pbe1>(env_, dir_, SmallOptions());
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(Ser(recovered.value()), Ser(Reference(workload, workload.size())));
}

TEST_F(RecoveryTest, AllSnapshotsCorruptIsAnError) {
  const auto workload = Workload(200, 26);
  DurabilityOptions d;
  d.snapshots_to_keep = 2;
  {
    auto durable = DurableBurstEngine1::Open(env_, dir_, SmallOptions(), d);
    ASSERT_TRUE(durable.ok());
    for (size_t i = 0; i < 100; ++i) {
      ASSERT_TRUE(durable.value()->Append(workload[i].e, workload[i].t).ok());
    }
    ASSERT_TRUE(durable.value()->Checkpoint().ok());
    for (size_t i = 100; i < 200; ++i) {
      ASSERT_TRUE(durable.value()->Append(workload[i].e, workload[i].t).ok());
    }
    ASSERT_TRUE(durable.value()->Checkpoint().ok());
  }
  // Both retained generations damaged: the WAL alone is only a suffix
  // of history, so recovery must refuse rather than serve it.
  ASSERT_TRUE(FlipBit(env_, SnapshotPath(dir_, 1), 30, 2).ok());
  ASSERT_TRUE(FlipBit(env_, SnapshotPath(dir_, 2), 30, 2).ok());
  auto recovered = RecoverBurstEngine<Pbe1>(env_, dir_, SmallOptions());
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), StatusCode::kCorruption);
}

TEST_F(RecoveryTest, ReopenContinuesAppending) {
  const auto workload = Workload(300, 27);
  {
    auto durable = DurableBurstEngine1::Open(env_, dir_, SmallOptions());
    ASSERT_TRUE(durable.ok());
    for (size_t i = 0; i < 100; ++i) {
      ASSERT_TRUE(durable.value()->Append(workload[i].e, workload[i].t).ok());
    }
    ASSERT_TRUE(durable.value()->Checkpoint().ok());
  }
  {
    auto durable = DurableBurstEngine1::Open(env_, dir_, SmallOptions());
    ASSERT_TRUE(durable.ok());
    EXPECT_EQ(durable.value()->engine().TotalCount(), 100u);
    for (size_t i = 100; i < 300; ++i) {
      ASSERT_TRUE(durable.value()->Append(workload[i].e, workload[i].t).ok());
    }
    ASSERT_TRUE(durable.value()->Sync().ok());
  }
  auto recovered = RecoverBurstEngine<Pbe1>(env_, dir_, SmallOptions());
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(Ser(recovered.value()), Ser(Reference(workload, workload.size())));
}

TEST_F(RecoveryTest, RecoveredEngineAnswersQueries) {
  const auto workload = Workload(400, 28);
  {
    auto durable = DurableBurstEngine1::Open(env_, dir_, SmallOptions());
    ASSERT_TRUE(durable.ok());
    for (const auto& r : workload) {
      ASSERT_TRUE(durable.value()->Append(r.e, r.t).ok());
    }
    ASSERT_TRUE(durable.value()->Checkpoint().ok());
  }
  auto recovered = RecoverBurstEngine<Pbe1>(env_, dir_, SmallOptions());
  ASSERT_TRUE(recovered.ok());
  BurstEngine1 reference = Reference(workload, workload.size());
  recovered.value().Finalize();
  reference.Finalize();
  const Timestamp horizon = workload.back().t;
  for (EventId e = 0; e < 16; ++e) {
    for (Timestamp t = 0; t <= horizon; t += 7) {
      EXPECT_DOUBLE_EQ(recovered.value().PointQuery(e, t, 4),
                       reference.PointQuery(e, t, 4));
      EXPECT_DOUBLE_EQ(recovered.value().CumulativeQuery(e, t),
                       reference.CumulativeQuery(e, t));
    }
  }
}

TEST_F(RecoveryTest, FreshDirectoryOpensEmpty) {
  auto durable = DurableBurstEngine1::Open(env_, dir_, SmallOptions());
  ASSERT_TRUE(durable.ok()) << durable.status().ToString();
  EXPECT_EQ(durable.value()->engine().TotalCount(), 0u);
  EXPECT_EQ(durable.value()->generation(), 0u);
}

// A QUARANTINED middle segment (the scrubber's disposition for
// corruption) is an explicit hole: replay recovers the longest
// contiguous good prefix and stops — it must never skip over the hole
// and apply causally-detached later segments.
TEST_F(RecoveryTest, QuarantinedMiddleSegmentStopsAtGoodPrefix) {
  const auto workload = Workload(400, 91);
  DurabilityOptions tiny;
  tiny.wal_segment_bytes = 1 << 10;
  {
    auto durable = DurableBurstEngine1::Open(env_, dir_, SmallOptions(), tiny);
    ASSERT_TRUE(durable.ok());
    for (const auto& r : workload) {
      ASSERT_TRUE(durable.value()->Append(r.e, r.t).ok());
    }
    ASSERT_TRUE(durable.value()->Sync().ok());
  }
  auto seqs = ListWalSegments(env_, dir_);
  ASSERT_TRUE(seqs.ok());
  ASSERT_GE(seqs.value().size(), 4u);
  const uint64_t victim = seqs.value()[1];
  const std::string victim_path = WalSegmentPath(dir_, victim);
  ASSERT_TRUE(
      env_->RenameFile(victim_path, victim_path + kQuarantineSuffix).ok());

  auto recovered = RecoverBurstEngine<Pbe1>(env_, dir_, SmallOptions());
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  const uint64_t k = recovered.value().TotalCount();
  EXPECT_GT(k, 0u);
  EXPECT_LT(k, workload.size());
  EXPECT_EQ(Ser(recovered.value()),
            Ser(Reference(workload, static_cast<size_t>(k))))
      << "recovery applied records from beyond the quarantine hole";

  // A writable reopen re-anchors on a fresh checkpoint so NEW appends
  // land reachably past the hole, and keeps serving.
  auto durable = DurableBurstEngine1::Open(env_, dir_, SmallOptions(), tiny);
  ASSERT_TRUE(durable.ok()) << durable.status().ToString();
  EXPECT_EQ(durable.value()->engine().TotalCount(), k);
  EXPECT_GE(durable.value()->generation(), 1u);
  ASSERT_TRUE(durable.value()->Append(3, workload.back().t + 1).ok());
  auto reread = RecoverBurstEngine<Pbe1>(env_, dir_, SmallOptions());
  ASSERT_TRUE(reread.ok());
  EXPECT_EQ(reread.value().TotalCount(), k + 1);
}

// The same gap WITHOUT a quarantine marker is indistinguishable from
// lost data: still a hard error.
TEST_F(RecoveryTest, BareSegmentGapIsStillCorruption) {
  const auto workload = Workload(400, 92);
  DurabilityOptions tiny;
  tiny.wal_segment_bytes = 1 << 10;
  {
    auto durable = DurableBurstEngine1::Open(env_, dir_, SmallOptions(), tiny);
    ASSERT_TRUE(durable.ok());
    for (const auto& r : workload) {
      ASSERT_TRUE(durable.value()->Append(r.e, r.t).ok());
    }
  }
  auto seqs = ListWalSegments(env_, dir_);
  ASSERT_TRUE(seqs.ok());
  ASSERT_GE(seqs.value().size(), 3u);
  ASSERT_TRUE(env_->DeleteFile(WalSegmentPath(dir_, seqs.value()[1])).ok());
  auto recovered = RecoverBurstEngine<Pbe1>(env_, dir_, SmallOptions());
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), StatusCode::kCorruption);
}

// Double-crash regression: a torn tail in segment N, then a reopen
// (which starts segment N+1), then ANOTHER crash. The second recovery
// sees the tear in a now NON-final segment — fatal mid-log corruption
// unless the first reopen disposed of the tear (truncate to the clean
// prefix, drop empty rotation remnants) when it skipped past it.
TEST_F(RecoveryTest, TornTailSurvivesReopenThenSecondRecovery) {
  const auto workload = Workload(60, 93);
  {
    auto durable = DurableBurstEngine1::Open(env_, dir_, SmallOptions());
    ASSERT_TRUE(durable.ok());
    for (const auto& r : workload) {
      ASSERT_TRUE(durable.value()->Append(r.e, r.t).ok());
    }
  }
  // Crash remnant: the final record loses its last 3 bytes.
  auto seqs = ListWalSegments(env_, dir_);
  ASSERT_TRUE(seqs.ok());
  const std::string tail_path = WalSegmentPath(dir_, seqs.value().back());
  auto size = env_->FileSize(tail_path);
  ASSERT_TRUE(size.ok());
  ASSERT_TRUE(TruncateFileTo(env_, tail_path, size.value() - 3).ok());

  uint64_t k1 = 0;
  {
    auto durable = DurableBurstEngine1::Open(env_, dir_, SmallOptions());
    ASSERT_TRUE(durable.ok()) << durable.status().ToString();
    k1 = durable.value()->engine().TotalCount();
    EXPECT_EQ(k1, workload.size() - 1) << "tear should cost the last record";
    // Keep writing on top of the recovered prefix, then "crash".
    ASSERT_TRUE(durable.value()->Append(1, workload.back().t + 1).ok());
  }

  auto recovered = RecoverBurstEngine<Pbe1>(env_, dir_, SmallOptions());
  ASSERT_TRUE(recovered.ok())
      << "second recovery died on the first crash's remnant: "
      << recovered.status().ToString();
  EXPECT_EQ(recovered.value().TotalCount(), k1 + 1);
}

}  // namespace
}  // namespace bursthist
