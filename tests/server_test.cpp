// Serving front-end end-to-end: wire parsing, TCP framing, snapshot
// freshness, admission control, and — the point of the differential
// style — byte-identical agreement between server replies and a local
// ground-truth engine fed the same records through the same Format
// helpers.

#include "server/ingest_server.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/burst_engine.h"
#include "core/read_snapshot.h"
#include "governor/resource_governor.h"
#include "recovery/durable_engine.h"
#include "server/wire.h"
#include "test_util.h"
#include "util/env.h"
#include "util/serialize.h"

namespace bursthist {
namespace server {
namespace {

BurstEngineOptions<Pbe1> EngineOpts(EventId universe,
                                    Timestamp max_lateness = 0) {
  BurstEngineOptions<Pbe1> o;
  o.universe_size = universe;
  o.max_lateness = max_lateness;
  return o;
}

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = Env::Default();
    dir_ = testing::TempDir() + "/bursthist_server_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    ASSERT_TRUE(env_->CreateDirIfMissing(dir_).ok());
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
    auto names = env_->ListDir(dir_);
    if (names.ok()) {
      for (const auto& n : names.value()) {
        (void)env_->DeleteFile(dir_ + "/" + n);
      }
    }
    ::rmdir(dir_.c_str());
  }

  // Opens the durable engine and starts a server on an ephemeral port.
  void StartServer(const BurstEngineOptions<Pbe1>& engine_options,
                   const BurstServiceOptions& service_options =
                       BurstServiceOptions(),
                   const TcpServerOptions& tcp_options = TcpServerOptions()) {
    auto opened = DurableBurstEngine<Pbe1>::Open(env_, dir_, engine_options);
    ASSERT_TRUE(opened.ok()) << opened.status().message();
    durable_ = std::move(opened).value();
    server_ = std::make_unique<IngestServer<DurableBurstEngine<Pbe1>>>(
        durable_.get(), service_options);
    ASSERT_TRUE(server_->Start(tcp_options).ok());
  }

  // One round trip on an established client.
  std::string RoundTrip(LineClient* client, const std::string& line) {
    EXPECT_TRUE(client->SendLine(line).ok());
    auto reply = client->ReadLine();
    EXPECT_TRUE(reply.ok()) << reply.status().message();
    return reply.ok() ? reply.value() : std::string();
  }

  LineClient Connect() {
    LineClient client;
    EXPECT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
    return client;
  }

  Env* env_ = nullptr;
  std::string dir_;
  std::unique_ptr<DurableBurstEngine<Pbe1>> durable_;
  std::unique_ptr<IngestServer<DurableBurstEngine<Pbe1>>> server_;
};

TEST_F(ServerTest, PingStatsQuit) {
  StartServer(EngineOpts(4));
  LineClient client = Connect();
  EXPECT_EQ(RoundTrip(&client, "PING"), "PONG");
  EXPECT_EQ(RoundTrip(&client, "ADD 1 10"), "OK");
  const std::string stats = RoundTrip(&client, "STATS");
  EXPECT_EQ(stats.compare(0, 6, "STATS "), 0) << stats;
  EXPECT_NE(stats.find("accepted=1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("watermark=10"), std::string::npos) << stats;
  EXPECT_EQ(RoundTrip(&client, "QUIT"), "BYE");
  // The server honors *close: the next read sees EOF.
  auto eof = client.ReadLine();
  EXPECT_FALSE(eof.ok());
}

// The differential heart of the suite: every query type answered over
// the wire must equal — byte for byte — the reply a local engine fed
// the identical records would produce through the same formatters.
TEST_F(ServerTest, RepliesMatchGroundTruthEngine) {
  const EventId kUniverse = 6;
  StartServer(EngineOpts(kUniverse));
  BurstEngine<Pbe1> truth(EngineOpts(kUniverse));

  LineClient client = Connect();
  Rng rng(test::CaseSeed(81));
  Timestamp t = 0;
  for (int i = 0; i < 200; ++i) {
    t += static_cast<Timestamp>(rng.NextBelow(3));
    const EventId e = static_cast<EventId>(rng.NextBelow(kUniverse));
    const Count c = 1 + static_cast<Count>(rng.NextBelow(2));
    ASSERT_EQ(RoundTrip(&client, "ADD " + std::to_string(e) + " " +
                                     std::to_string(t) + " " +
                                     std::to_string(c)),
              "OK");
    ASSERT_TRUE(truth.Append(e, t, c).ok());
  }

  auto snap = truth.AcquireSnapshot();
  const Timestamp w = snap->watermark();
  for (EventId e = 0; e < kUniverse; ++e) {
    for (Timestamp tau : {1, 4, 16}) {
      const auto point = snap->Point(e, w, tau);
      EXPECT_EQ(RoundTrip(&client, "POINT " + std::to_string(e) + " " +
                                       std::to_string(w) + " " +
                                       std::to_string(tau)),
                FormatValue(point.value, point.watermark, point.bound));
      const auto times = snap->BurstyTime(e, 2.0, tau);
      EXPECT_EQ(RoundTrip(&client, "BTIME " + std::to_string(e) + " 2 " +
                                       std::to_string(tau)),
                FormatIntervals(times.value, times.watermark, times.bound));
    }
    const auto freq = snap->Frequency(e, w / 4, w / 2);
    EXPECT_EQ(RoundTrip(&client, "FREQ " + std::to_string(e) + " " +
                                     std::to_string(w / 4) + " " +
                                     std::to_string(w / 2)),
              FormatValue(freq.value, freq.watermark, freq.bound));
  }
  for (Timestamp tau : {1, 4, 16}) {
    const auto events = snap->BurstyEvent(w, 2.0, tau);
    EXPECT_EQ(RoundTrip(&client, "BEVENT " + std::to_string(w) + " 2 " +
                                     std::to_string(tau)),
              FormatEvents(events.value, events.watermark, events.bound));
    const auto topk = snap->TopK(w, 3, tau);
    EXPECT_EQ(RoundTrip(&client, "TOPK " + std::to_string(w) + " 3 " +
                                     std::to_string(tau)),
              FormatTopK(topk.value, topk.watermark, topk.bound));
  }
}

// The bug this PR fixes, end to end: with a lateness window every
// record sits in the re-order buffer, and the served answers must
// still cover them.
TEST_F(ServerTest, ServesBufferedRecordsUnderLateness) {
  auto options = EngineOpts(4, /*max_lateness=*/100);
  options.cell.buffer_points = 256;
  options.cell.budget_points = 256;  // lossless: the POINT value is exact
  StartServer(options);
  BurstEngine<Pbe1> truth(options);

  LineClient client = Connect();
  for (Timestamp t = 10; t < 20; ++t) {
    ASSERT_EQ(RoundTrip(&client, "ADD 1 " + std::to_string(t)), "OK");
    ASSERT_TRUE(truth.Append(1, t).ok());
  }
  // Everything is buffered (watermark 19, lateness 100)...
  EXPECT_EQ(durable_->engine().TotalCount(), 0u);
  // ...yet the served POINT answer equals the ground truth's.
  auto snap = truth.AcquireSnapshot();
  const auto ans = snap->Point(1, 15, 5);
  EXPECT_GT(ans.value, 0.0);
  EXPECT_EQ(RoundTrip(&client, "POINT 1 15 5"),
            FormatValue(ans.value, ans.watermark, ans.bound));
}

// Each ADD must be visible to the very next query
// (snapshot_staleness_appends = 1 by default).
TEST_F(ServerTest, QueriesAreFreshAfterEveryAdd) {
  StartServer(EngineOpts(4));
  BurstEngine<Pbe1> truth(EngineOpts(4));
  LineClient client = Connect();
  for (Timestamp t = 0; t < 20; ++t) {
    ASSERT_EQ(RoundTrip(&client, "ADD 0 " + std::to_string(t)), "OK");
    ASSERT_TRUE(truth.Append(0, t).ok());
    auto snap = truth.AcquireSnapshot();
    const auto ans = snap->Cumulative(0, t);
    EXPECT_EQ(RoundTrip(&client,
                        "FREQ 0 0 " + std::to_string(t)),
              FormatValue(ans.value, ans.watermark, ans.bound))
        << "t=" << t;
  }
}

TEST_F(ServerTest, ErrorReplies) {
  StartServer(EngineOpts(4));
  LineClient client = Connect();
  EXPECT_EQ(RoundTrip(&client, "FROB 1 2"),
            "ERR INVALID_ARGUMENT unknown verb: FROB");
  EXPECT_EQ(RoundTrip(&client, "ADD"), "ERR INVALID_ARGUMENT usage: ADD <e> <t> [count]");
  EXPECT_EQ(RoundTrip(&client, "ADD x 5"),
            "ERR INVALID_ARGUMENT ADD: malformed id or timestamp");
  EXPECT_EQ(RoundTrip(&client, "ADD 1 5 0"),
            "ERR INVALID_ARGUMENT ADD: count must be a positive integer");
  // Event id out of the configured universe.
  EXPECT_EQ(RoundTrip(&client, "POINT 99 5 1"),
            "ERR INVALID_ARGUMENT event id exceeds universe size");
  EXPECT_EQ(RoundTrip(&client, "BTIME 1 0 4"),
            "ERR INVALID_ARGUMENT theta must be positive");
  EXPECT_EQ(RoundTrip(&client, "BEVENT 5 -1 4"),
            "ERR INVALID_ARGUMENT theta must be positive");
  EXPECT_EQ(RoundTrip(&client, "POINT 1 5 -1"),
            "ERR INVALID_ARGUMENT tau must be >= 0");
  // Parse errors never kill the connection.
  EXPECT_EQ(RoundTrip(&client, "PING"), "PONG");
}

TEST_F(ServerTest, OverlongLineIsRejected) {
  TcpServerOptions tcp;
  tcp.max_line_bytes = 64;
  StartServer(EngineOpts(4), BurstServiceOptions(), tcp);
  LineClient client = Connect();
  const std::string reply =
      RoundTrip(&client, "ADD 1 " + std::string(200, '9'));
  EXPECT_EQ(reply.compare(0, 20, "ERR INVALID_ARGUMENT"), 0) << reply;
}

TEST_F(ServerTest, MetricsVerbStreamsUntilEnd) {
  StartServer(EngineOpts(4));
  LineClient client = Connect();
  ASSERT_EQ(RoundTrip(&client, "ADD 2 7"), "OK");
  ASSERT_EQ(RoundTrip(&client, "POINT 2 7 1").compare(0, 6, "VALUE "), 0);
  ASSERT_TRUE(client.SendLine("METRICS").ok());
  bool saw_requests_metric = false;
  for (;;) {
    auto line = client.ReadLine();
    ASSERT_TRUE(line.ok()) << line.status().message();
    if (line.value() == "END") break;
    if (line.value().find("bursthist_server_requests_total") !=
        std::string::npos) {
      saw_requests_metric = true;
    }
  }
#ifndef BURSTHIST_NO_METRICS
  EXPECT_TRUE(saw_requests_metric);
#endif
  EXPECT_EQ(RoundTrip(&client, "PING"), "PONG");
}

TEST_F(ServerTest, HttpMetricsEndpoint) {
  StartServer(EngineOpts(4));
  LineClient client = Connect();
  ASSERT_TRUE(client.SendLine("GET /metrics HTTP/1.0").ok());
  auto status_line = client.ReadLine();
  ASSERT_TRUE(status_line.ok());
  EXPECT_EQ(status_line.value(), "HTTP/1.0 200 OK");
  bool saw_content_type = false;
  for (;;) {
    auto line = client.ReadLine();
    if (!line.ok()) break;  // server half-closes after the body
    if (line.value().find("Content-Type: text/plain") != std::string::npos) {
      saw_content_type = true;
    }
  }
  EXPECT_TRUE(saw_content_type);

  LineClient other = Connect();
  ASSERT_TRUE(other.SendLine("GET /nope HTTP/1.0").ok());
  auto not_found = other.ReadLine();
  ASSERT_TRUE(not_found.ok());
  EXPECT_EQ(not_found.value(), "HTTP/1.0 404 Not Found");
}

// Admission control: with a saturated byte budget the governor walks
// its degradation ladder and then refuses ADDs — but queries keep
// being served.
TEST_F(ServerTest, GovernorRefusesWritesButServesReads) {
  ResourceGovernor governor({/*soft=*/1, /*hard=*/1});
  BurstServiceOptions service;
  service.governor = &governor;
  service.audit_every = 1;
  StartServer(EngineOpts(4), service);
  governor.RegisterComponent(
      "engine", [this] { return durable_->engine().MemoryUsage(); },
      [this](double factor) { durable_->engine().Degrade(factor); });

  LineClient client = Connect();
  bool refused = false;
  for (Timestamp t = 0; t < 64 && !refused; ++t) {
    const std::string reply = RoundTrip(&client, "ADD 1 " + std::to_string(t));
    if (reply.compare(0, 22, "ERR RESOURCE_EXHAUSTED") == 0) refused = true;
  }
  EXPECT_TRUE(refused) << "saturated governor never refused an ADD";
  // Reads stay up under overload.
  EXPECT_EQ(RoundTrip(&client, "POINT 1 4 1").compare(0, 6, "VALUE "), 0);
  const std::string stats = RoundTrip(&client, "STATS");
  EXPECT_NE(stats.find("level="), std::string::npos) << stats;
}

// Many clients interleaving writes and reads: the tsan-facing test.
// Every ADD must be acknowledged, every query must parse as a reply,
// and the final accepted count must equal the sum of acknowledged
// ADDs.
TEST_F(ServerTest, ConcurrentClients) {
  constexpr int kClients = 6;
  constexpr int kAddsPerClient = 60;
  // Each client stamps its own t = 0..59 clock; the shared watermark
  // needs a lateness window covering the full spread so interleaved
  // clients never collide with each other's progress.
  StartServer(EngineOpts(8, /*max_lateness=*/1000));

  std::atomic<int> acknowledged{0};
  std::vector<std::thread> threads;
  const uint16_t port = server_->port();
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      LineClient client;
      ASSERT_TRUE(client.Connect("127.0.0.1", port).ok());
      for (int i = 0; i < kAddsPerClient; ++i) {
        const Timestamp t = static_cast<Timestamp>(i);
        const EventId e = static_cast<EventId>(c % 8);
        ASSERT_TRUE(client
                        .SendLine("ADD " + std::to_string(e) + " " +
                                  std::to_string(t))
                        .ok());
        auto reply = client.ReadLine();
        ASSERT_TRUE(reply.ok());
        if (reply.value() == "OK") acknowledged.fetch_add(1);
        if (i % 5 == 0) {
          ASSERT_TRUE(client
                          .SendLine("POINT " + std::to_string(e) + " " +
                                    std::to_string(t) + " 4")
                          .ok());
          auto ans = client.ReadLine();
          ASSERT_TRUE(ans.ok());
          EXPECT_EQ(ans.value().compare(0, 6, "VALUE "), 0) << ans.value();
          EXPECT_NE(ans.value().find("watermark="), std::string::npos);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(acknowledged.load(), kClients * kAddsPerClient);

  LineClient client = Connect();
  const std::string stats = RoundTrip(&client, "STATS");
  EXPECT_NE(stats.find("accepted=" +
                       std::to_string(kClients * kAddsPerClient)),
            std::string::npos)
      << stats;
  // Every accepted record is either ingested or still buffered behind
  // the lateness window — none vanished.
  unsigned long long total = 0, buffered = 0;
  ASSERT_EQ(std::sscanf(stats.c_str(), "STATS total=%llu buffered=%llu",
                        &total, &buffered),
            2)
      << stats;
  EXPECT_EQ(total + buffered,
            static_cast<unsigned long long>(kClients * kAddsPerClient));
}

// Satellite: the lock-free ingest ring, end to end. N concurrent
// clients pipeline their ADDs (many lines per TCP send, so the server
// batches each chunk into one ring job), and the resulting engine
// must be BYTE-identical to a ground-truth engine fed the same
// multiset of records serially. The big lateness window keeps every
// record in the re-order buffer, whose serialized dump is canonical
// (total-ordered) — so any interleaving of client batches must
// converge on the same bytes if and only if no record was lost,
// duplicated, or corrupted on its way through the ring.
TEST_F(ServerTest, ConcurrentBatchedClientsMatchGroundTruthBytes) {
  constexpr int kClients = 5;
  constexpr int kAddsPerClient = 120;
  constexpr int kPipelineDepth = 16;  // ADD lines per TCP send
  const auto options = EngineOpts(8, /*max_lateness=*/1000000);
  StartServer(options);

  std::vector<std::thread> threads;
  const uint16_t port = server_->port();
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      LineClient client;
      ASSERT_TRUE(client.Connect("127.0.0.1", port).ok());
      int sent = 0;
      while (sent < kAddsPerClient) {
        const int n = std::min(kPipelineDepth, kAddsPerClient - sent);
        // One send carrying n ADD lines: the server's recv sees them
        // together and runs them through the ring as one batch.
        std::string pipeline;
        for (int i = 0; i < n; ++i) {
          const int k = sent + i;
          const EventId e = static_cast<EventId>((c * 3 + k) % 8);
          const Timestamp t = static_cast<Timestamp>(c * 1000 + k);
          const Count count = static_cast<Count>(1 + k % 3);
          pipeline += "ADD " + std::to_string(e) + " " + std::to_string(t) +
                      " " + std::to_string(count);
          if (i + 1 < n) pipeline += "\n";
        }
        ASSERT_TRUE(client.SendLine(pipeline).ok());
        for (int i = 0; i < n; ++i) {
          auto reply = client.ReadLine();
          ASSERT_TRUE(reply.ok()) << reply.status().message();
          ASSERT_EQ(reply.value(), "OK");
        }
        sent += n;
      }
    });
  }
  for (auto& th : threads) th.join();

  // Ground truth: the same records, appended serially in client-major
  // order. The reorder buffer's canonical total order erases the
  // arrival interleaving on both sides.
  BurstEngine<Pbe1> truth(options);
  for (int c = 0; c < kClients; ++c) {
    for (int k = 0; k < kAddsPerClient; ++k) {
      ASSERT_TRUE(truth
                      .Append(static_cast<EventId>((c * 3 + k) % 8),
                              static_cast<Timestamp>(c * 1000 + k),
                              static_cast<Count>(1 + k % 3))
                      .ok());
    }
  }
  BinaryWriter server_bytes;
  durable_->engine().Serialize(&server_bytes);
  BinaryWriter truth_bytes;
  truth.Serialize(&truth_bytes);
  EXPECT_EQ(server_bytes.bytes(), truth_bytes.bytes());
}

// Wire-level unit checks that need no server.
// A raw blocking socket the tests can fragment at will — LineClient
// deliberately hides framing, which is exactly what these tests need
// to control.
class RawConn {
 public:
  explicit RawConn(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~RawConn() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool ok() const { return fd_ >= 0; }

  // Sends the bytes one at a time, with a tiny pause every few bytes
  // so the server really does see split reads across its LineBuffer.
  bool SendFragmented(const std::string& data) {
    for (size_t i = 0; i < data.size(); ++i) {
      if (::send(fd_, data.data() + i, 1, MSG_NOSIGNAL) != 1) return false;
      if (i % 3 == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    return true;
  }

  // Reads until `lines` full lines arrived, in 1-byte recv calls.
  std::vector<std::string> ReadLinesTiny(size_t lines) {
    std::vector<std::string> out;
    std::string current;
    char b = 0;
    while (out.size() < lines && ::recv(fd_, &b, 1, 0) == 1) {
      if (b == '\n') {
        out.push_back(current);
        current.clear();
      } else {
        current.push_back(b);
      }
    }
    return out;
  }

 private:
  int fd_ = -1;
};

// Satellite: the wire protocol must be immune to arbitrary TCP
// fragmentation — commands trickling in byte by byte, replies read
// back one byte at a time, pipelined lines split mid-token.
TEST_F(ServerTest, FragmentedWireIo) {
  StartServer(EngineOpts(4));
  RawConn conn(server_->port());
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(conn.SendFragmented("PING\nADD 1 10\nADD 1 12\nSTATS\n"));
  auto replies = conn.ReadLinesTiny(4);
  ASSERT_EQ(replies.size(), 4u);
  EXPECT_EQ(replies[0], "PONG");
  EXPECT_EQ(replies[1], "OK");
  EXPECT_EQ(replies[2], "OK");
  EXPECT_NE(replies[3].find("accepted=2"), std::string::npos) << replies[3];

  // A second batch on the same connection, split mid-verb across two
  // bursts with a pause between them.
  ASSERT_TRUE(conn.SendFragmented("POI"));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(conn.SendFragmented("NT 1 12 1\nQUIT\n"));
  replies = conn.ReadLinesTiny(2);
  ASSERT_EQ(replies.size(), 2u);
  EXPECT_EQ(replies[0].compare(0, 6, "VALUE "), 0) << replies[0];
  EXPECT_EQ(replies[1], "BYE");
}

// Satellite: a client that connects and goes silent is evicted after
// the idle timeout instead of holding its slot forever.
TEST_F(ServerTest, IdleConnectionIsClosed) {
  TcpServerOptions tcp;
  tcp.idle_timeout_ms = 100;
  StartServer(EngineOpts(4), BurstServiceOptions(), tcp);
  LineClient client = Connect();
  // Active traffic is unaffected...
  EXPECT_EQ(RoundTrip(&client, "PING"), "PONG");
  // ...but silence past the timeout gets the connection closed.
  const auto start = std::chrono::steady_clock::now();
  auto eof = client.ReadLine();
  EXPECT_FALSE(eof.ok());
  EXPECT_LT(std::chrono::steady_clock::now() - start,
            std::chrono::seconds(10));
}

// Satellite: graceful shutdown plumbing. StopAccepting refuses new
// dials while established connections keep being served; Drain
// reports idle once they hang up.
TEST_F(ServerTest, StopAcceptingThenDrain) {
  StartServer(EngineOpts(4));
  LineClient client = Connect();
  // A round trip first: Connect() alone only parks the dial in the
  // kernel backlog, and a backlogged-but-unaccepted connection is
  // fair game for StopAccepting() to reset.
  EXPECT_EQ(RoundTrip(&client, "PING"), "PONG");
  server_->StopAccepting();
  // Established (accepted) connection still answers.
  EXPECT_EQ(RoundTrip(&client, "PING"), "PONG");
  // New dials are refused (connect fails or the socket is dead on
  // arrival).
  RawConn late(server_->port());
  if (late.ok()) {
    EXPECT_TRUE(late.SendFragmented("PING\n"));
    EXPECT_TRUE(late.ReadLinesTiny(1).empty());
  }
  // Still one active connection: a zero-grace drain times out.
  EXPECT_FALSE(server_->Drain(0));
  client.Close();
  EXPECT_TRUE(server_->Drain(2000));
  server_->Stop();
}

// PROMOTE against a plain (non-replica) server is a refusal.
TEST_F(ServerTest, PromoteOnPlainServerIsRefused) {
  StartServer(EngineOpts(4));
  LineClient client = Connect();
  const std::string reply = RoundTrip(&client, "PROMOTE");
  EXPECT_EQ(reply.compare(0, 23, "ERR FAILED_PRECONDITION"), 0) << reply;
}

// Follower serving through ReplicaHooks: writes are refused with
// UNAVAILABLE, queries carry the lag stamp, STATS reports the role —
// and after PROMOTE flips the hooks, writes flow.
TEST_F(ServerTest, FollowerHooksGateWritesAndStampLag) {
  static std::mutex apply_mu;
  static std::atomic<bool> is_follower{true};
  is_follower.store(true);
  BurstServiceOptions service;
  service.replica.enabled = true;
  service.replica.write_mu = &apply_mu;
  service.replica.is_follower = [] { return is_follower.load(); };
  service.replica.lag = [] { return Timestamp{7}; };
  service.replica.applied = [] { return uint64_t{42}; };
  service.replica.promote = [] {
    is_follower.store(false);
    return Status::OK();
  };
  StartServer(EngineOpts(4), service);
  LineClient client = Connect();

  const std::string add = RoundTrip(&client, "ADD 1 10");
  EXPECT_EQ(add.compare(0, 15, "ERR UNAVAILABLE"), 0) << add;
  const std::string point = RoundTrip(&client, "POINT 1 10 1");
  EXPECT_EQ(point.compare(0, 6, "VALUE "), 0) << point;
  EXPECT_NE(point.find(" lag=7"), std::string::npos) << point;
  std::string stats = RoundTrip(&client, "STATS");
  EXPECT_NE(stats.find("role=follower"), std::string::npos) << stats;
  EXPECT_NE(stats.find("applied=42"), std::string::npos) << stats;

  EXPECT_EQ(RoundTrip(&client, "PROMOTE"), "OK");
  stats = RoundTrip(&client, "STATS");
  EXPECT_NE(stats.find("role=leader"), std::string::npos) << stats;
  EXPECT_EQ(RoundTrip(&client, "ADD 1 10"), "OK");
}

TEST(WireTest, ParseRejectsMalformedNumbers) {
  EXPECT_FALSE(ParseRequest("ADD 1 2x").ok());
  EXPECT_FALSE(ParseRequest("ADD -1 2").ok());
  EXPECT_FALSE(ParseRequest("POINT 1 2").ok());
  EXPECT_FALSE(ParseRequest("TOPK 5 -3 1").ok());
  EXPECT_FALSE(ParseRequest("PING extra").ok());
  EXPECT_FALSE(ParseRequest("").ok());
  auto ok = ParseRequest("  ADD  3   17  2 ");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value().e, 3u);
  EXPECT_EQ(ok.value().t, 17);
  EXPECT_EQ(ok.value().count, 2u);
}

TEST(WireTest, FormatDoubleRoundTrips) {
  for (double v : {0.0, 1.0, -2.5, 1.0 / 3.0, 12345.678901234567, 1e300}) {
    const std::string s = FormatDouble(v);
    EXPECT_EQ(std::stod(s), v) << s;
  }
  EXPECT_EQ(FormatDouble(2.0), "2");
}

TEST(WireTest, LineBufferSplitsAndRejectsOverlong) {
  LineBuffer buf(/*max_line_bytes=*/8);
  std::vector<std::string> lines;
  ASSERT_TRUE(buf.Feed("a\r\nbb\nc", 7, &lines).ok());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "a");
  EXPECT_EQ(lines[1], "bb");
  const std::string longline(20, 'x');
  EXPECT_FALSE(buf.Feed(longline.data(), longline.size(), &lines).ok());
}

}  // namespace
}  // namespace server
}  // namespace bursthist
