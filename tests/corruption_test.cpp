// Failure-injection tests: every persistent structure must reject —
// with a clean Status, never a crash or hang — payloads that are
// truncated at any byte boundary or bit-flipped in the header.

#include <gtest/gtest.h>

#include <vector>

#include "core/burst_engine.h"
#include "core/cm_pbe.h"
#include "core/pbe1.h"
#include "core/pbe2.h"
#include "sketch/count_min.h"
#include "sketch/snapshot_cm.h"
#include "util/random.h"

namespace bursthist {
namespace {

// Deserializing any strict prefix of a valid payload must fail (the
// formats carry no padding), and deserializing with trailing garbage
// must still succeed for the valid prefix.
template <typename T>
void CheckTruncationSafety(const T& original, T* scratch) {
  BinaryWriter w;
  original.Serialize(&w);
  const std::vector<uint8_t>& bytes = w.bytes();
  ASSERT_GT(bytes.size(), 8u);

  // Exhaustive truncation for small payloads, strided for large ones.
  const size_t stride = bytes.size() > 4096 ? 97 : 1;
  for (size_t cut = 0; cut < bytes.size(); cut += stride) {
    BinaryReader r(bytes.data(), cut);
    Status st = scratch->Deserialize(&r);
    EXPECT_FALSE(st.ok()) << "truncation at " << cut << " accepted";
  }

  // Header bit flips: magic/version corruption must be detected.
  for (size_t byte = 0; byte < 8; ++byte) {
    std::vector<uint8_t> mutated = bytes;
    mutated[byte] ^= 0x80;
    BinaryReader r(mutated);
    T victim = *scratch;
    Status st = victim.Deserialize(&r);
    EXPECT_FALSE(st.ok()) << "header flip at byte " << byte << " accepted";
  }

  // The untouched payload still round-trips (sanity).
  BinaryReader r(bytes);
  Status st = scratch->Deserialize(&r);
  EXPECT_TRUE(st.ok()) << st.ToString();
}

SingleEventStream SmallStream() {
  Rng rng(77);
  std::vector<Timestamp> times;
  Timestamp t = 0;
  for (int i = 0; i < 300; ++i) {
    t += static_cast<Timestamp>(rng.NextBelow(4));
    times.push_back(t);
  }
  return SingleEventStream(std::move(times));
}

TEST(CorruptionTest, Pbe1) {
  Pbe1Options o;
  o.buffer_points = 64;
  o.budget_points = 16;
  Pbe1 pbe(o);
  const SingleEventStream stream = SmallStream();
  for (Timestamp t : stream.times()) pbe.Append(t);
  pbe.Finalize();
  Pbe1 scratch;
  CheckTruncationSafety(pbe, &scratch);
}

TEST(CorruptionTest, Pbe2) {
  Pbe2Options o;
  o.gamma = 2.0;
  Pbe2 pbe(o);
  const SingleEventStream stream = SmallStream();
  for (Timestamp t : stream.times()) pbe.Append(t);
  pbe.Finalize();
  Pbe2 scratch;
  CheckTruncationSafety(pbe, &scratch);
}

TEST(CorruptionTest, CountMin) {
  CountMinOptions o;
  o.depth = 3;
  o.width = 32;
  CountMinSketch cm(o);
  Rng rng(5);
  for (int i = 0; i < 500; ++i) cm.Add(rng.NextBelow(64));
  CountMinSketch scratch(o);
  CheckTruncationSafety(cm, &scratch);
}

TEST(CorruptionTest, SnapshotCm) {
  SnapshotCmOptions o;
  o.depth = 2;
  o.width = 16;
  o.snapshot_interval = 20;
  SnapshotCmSketch cm(o);
  Rng rng(7);
  Timestamp t = 0;
  for (int i = 0; i < 500; ++i) {
    t += static_cast<Timestamp>(rng.NextBelow(3));
    cm.Append(static_cast<EventId>(rng.NextBelow(8)), t);
  }
  cm.Finalize();
  SnapshotCmSketch scratch(o);
  CheckTruncationSafety(cm, &scratch);
}

TEST(CorruptionTest, CmPbeGrid) {
  Pbe1Options cell;
  cell.buffer_points = 64;
  cell.budget_points = 16;
  CmPbeOptions grid;
  grid.depth = 2;
  grid.width = 8;
  CmPbe<Pbe1> cm(grid, cell);
  Rng rng(9);
  Timestamp t = 0;
  for (int i = 0; i < 1000; ++i) {
    t += static_cast<Timestamp>(rng.NextBelow(3));
    cm.Append(static_cast<EventId>(rng.NextBelow(16)), t);
  }
  cm.Finalize();
  CmPbe<Pbe1> scratch(grid, cell);
  CheckTruncationSafety(cm, &scratch);
}

TEST(CorruptionTest, BurstEngine) {
  BurstEngineOptions<Pbe1> o;
  o.universe_size = 16;
  o.grid.depth = 2;
  o.grid.width = 8;
  o.cell.buffer_points = 64;
  o.cell.budget_points = 16;
  BurstEngine1 engine(o);
  Rng rng(11);
  Timestamp t = 0;
  for (int i = 0; i < 800; ++i) {
    t += static_cast<Timestamp>(rng.NextBelow(3));
    ASSERT_TRUE(engine.Append(static_cast<EventId>(rng.NextBelow(16)), t).ok());
  }
  engine.Finalize();
  BurstEngine1 scratch(o);
  CheckTruncationSafety(engine, &scratch);
}

// With CRC32C framing, corruption detection is no longer limited to
// the header: flipping ANY bit of a serialized engine blob must be
// rejected with a clean kCorruption / kInvalidArgument — never a
// crash, hang, or silent acceptance of altered data.
TEST(CorruptionTest, BurstEngineFullBlobBitFlipSweep) {
  BurstEngineOptions<Pbe1> o;
  o.universe_size = 8;
  o.grid.depth = 1;
  o.grid.width = 4;
  o.cell.buffer_points = 16;
  o.cell.budget_points = 4;
  BurstEngine1 engine(o);
  Rng rng(17);
  Timestamp t = 0;
  for (int i = 0; i < 200; ++i) {
    t += static_cast<Timestamp>(rng.NextBelow(3));
    ASSERT_TRUE(engine.Append(static_cast<EventId>(rng.NextBelow(8)), t).ok());
  }
  engine.Finalize();
  BinaryWriter w;
  engine.Serialize(&w);
  const std::vector<uint8_t>& bytes = w.bytes();

  const size_t stride = bytes.size() > 4096 ? 17 : 1;
  for (size_t byte = 0; byte < bytes.size(); byte += stride) {
    for (unsigned bit = 0; bit < 8; bit += 3) {
      std::vector<uint8_t> mutated = bytes;
      mutated[byte] ^= static_cast<uint8_t>(1u << bit);
      BurstEngine1 victim(o);
      BinaryReader r(mutated);
      Status st = victim.Deserialize(&r);
      EXPECT_FALSE(st.ok())
          << "bit " << bit << " of byte " << byte << " accepted";
      if (!st.ok()) {
        EXPECT_TRUE(st.code() == StatusCode::kCorruption ||
                    st.code() == StatusCode::kInvalidArgument)
            << st.ToString();
      }
    }
  }
}

// The same sweep for the standalone estimators' framed blobs.
TEST(CorruptionTest, EstimatorFullBlobBitFlipSweep) {
  const SingleEventStream stream = SmallStream();
  {
    Pbe1Options o;
    o.buffer_points = 32;
    o.budget_points = 8;
    Pbe1 pbe(o);
    for (Timestamp t : stream.times()) pbe.Append(t);
    pbe.Finalize();
    BinaryWriter w;
    pbe.Serialize(&w);
    const std::vector<uint8_t>& bytes = w.bytes();
    for (size_t byte = 0; byte < bytes.size(); ++byte) {
      std::vector<uint8_t> mutated = bytes;
      mutated[byte] ^= 0x01;
      Pbe1 victim;
      BinaryReader r(mutated);
      EXPECT_FALSE(victim.Deserialize(&r).ok())
          << "pbe1 flip at byte " << byte << " accepted";
    }
  }
  {
    Pbe2Options o;
    o.gamma = 2.0;
    Pbe2 pbe(o);
    for (Timestamp t : stream.times()) pbe.Append(t);
    pbe.Finalize();
    BinaryWriter w;
    pbe.Serialize(&w);
    const std::vector<uint8_t>& bytes = w.bytes();
    for (size_t byte = 0; byte < bytes.size(); ++byte) {
      std::vector<uint8_t> mutated = bytes;
      mutated[byte] ^= 0x01;
      Pbe2 victim;
      BinaryReader r(mutated);
      EXPECT_FALSE(victim.Deserialize(&r).ok())
          << "pbe2 flip at byte " << byte << " accepted";
    }
  }
}

TEST(CorruptionTest, GarbageBytesRejected) {
  Rng rng(13);
  std::vector<uint8_t> garbage(256);
  for (auto& b : garbage) b = static_cast<uint8_t>(rng.NextBelow(256));
  {
    Pbe1 p;
    BinaryReader r(garbage);
    EXPECT_FALSE(p.Deserialize(&r).ok());
  }
  {
    Pbe2 p;
    BinaryReader r(garbage);
    EXPECT_FALSE(p.Deserialize(&r).ok());
  }
  {
    SnapshotCmSketch s{SnapshotCmOptions{}};
    BinaryReader r(garbage);
    EXPECT_FALSE(s.Deserialize(&r).ok());
  }
}

}  // namespace
}  // namespace bursthist
