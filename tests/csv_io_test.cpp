// Unit tests for CSV event-stream import/export.

#include <gtest/gtest.h>

#include <cstdio>

#include "stream/csv_io.h"

namespace bursthist {
namespace {

TEST(CsvIoTest, ParseBasic) {
  auto r = ParseEventStreamCsv("1,10\n2,11\n1,11\n");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().size(), 3u);
  EXPECT_EQ(r.value().records()[0], (EventRecord{1, 10}));
  EXPECT_EQ(r.value().records()[2], (EventRecord{1, 11}));
}

TEST(CsvIoTest, SkipsCommentsAndBlanks) {
  auto r = ParseEventStreamCsv("# header\n\n5,100\n\n# tail\n6,101\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().size(), 2u);
}

TEST(CsvIoTest, CrlfTolerated) {
  auto r = ParseEventStreamCsv("1,10\r\n2,20\r\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().size(), 2u);
  EXPECT_EQ(r.value().records()[1].time, 20);
}

TEST(CsvIoTest, NegativeTimestampsAllowed) {
  auto r = ParseEventStreamCsv("0,-100\n0,-50\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().MinTime(), -100);
}

TEST(CsvIoTest, MalformedLineReported) {
  auto r = ParseEventStreamCsv("1,10\nnot a line\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos);
}

TEST(CsvIoTest, MissingCommaReported) {
  EXPECT_FALSE(ParseEventStreamCsv("42\n").ok());
  EXPECT_FALSE(ParseEventStreamCsv("42,\n").ok());
  EXPECT_FALSE(ParseEventStreamCsv("42,7,9\n").ok());
}

TEST(CsvIoTest, TimeRegressionReported) {
  auto r = ParseEventStreamCsv("1,10\n2,5\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

TEST(CsvIoTest, IdOverflowReported) {
  auto r = ParseEventStreamCsv("5000000000,1\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

TEST(CsvIoTest, HugeIdOverflowDoesNotWrap) {
  // Larger than 2^64: strtoull saturates with ERANGE; must report
  // overflow, not a wrapped id.
  auto r = ParseEventStreamCsv("99999999999999999999999999,1\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
  EXPECT_NE(r.status().message().find("line 1"), std::string::npos);
}

TEST(CsvIoTest, NegativeIdRejected) {
  // strtoull accepts '-' and wraps modulo 2^64; a negative id must not
  // sneak through as a huge (or small) positive one.
  auto r = ParseEventStreamCsv("-3,1\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

TEST(CsvIoTest, TimestampOverflowReported) {
  auto r = ParseEventStreamCsv("1,99999999999999999999999999\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
  EXPECT_NE(r.status().message().find("timestamp overflows"),
            std::string::npos);
  EXPECT_FALSE(ParseEventStreamCsv("1,-99999999999999999999999999\n").ok());
}

TEST(CsvIoTest, EmbeddedNulRejected) {
  // A NUL would hide everything after it from the C string parsers.
  std::string text = "1,10\n2,2";
  text += '\0';
  text += "garbage\n";
  auto r = ParseEventStreamCsv(text);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos);
}

TEST(CsvIoTest, TrailingGarbageRejected) {
  EXPECT_FALSE(ParseEventStreamCsv("1,10junk\n").ok());
  EXPECT_FALSE(ParseEventStreamCsv("1,10 \n").ok());
  auto r = ParseEventStreamCsv("1,10;2,11\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("trailing garbage"),
            std::string::npos);
}

TEST(CsvIoTest, ErrorQuotesOffendingRow) {
  auto r = ParseEventStreamCsv("1,10\nnot,a,number\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("'not,a,number'"), std::string::npos);
}

TEST(CsvIoTest, NonMonotoneGarbageRunReported) {
  // A long mostly-valid feed whose tail goes non-monotone: the error
  // names the first offending row.
  std::string text;
  for (int i = 0; i < 100; ++i) {
    text += std::to_string(i % 4) + "," + std::to_string(i) + "\n";
  }
  text += "0,3\n";
  auto r = ParseEventStreamCsv(text);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
  EXPECT_NE(r.status().message().find("line 101"), std::string::npos);
}

TEST(CsvIoTest, EmptyInputIsEmptyStream) {
  auto r = ParseEventStreamCsv("");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().empty());
}

TEST(CsvIoTest, FileRoundTrip) {
  EventStream s({{0, 1}, {3, 2}, {1, 2}, {2, 9}});
  const std::string path = testing::TempDir() + "/bursthist_csv_test.csv";
  ASSERT_TRUE(WriteEventStreamCsv(path, s).ok());
  auto back = ReadEventStreamCsv(path);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back.value().size(), s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(back.value().records()[i], s.records()[i]);
  }
  std::remove(path.c_str());
}

TEST(CsvIoTest, MissingFileIsNotFound) {
  auto r = ReadEventStreamCsv("/no/such/file.csv");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace bursthist
