// Tests for the TOP-K bursty-event query and the frequency-filtered
// BURSTY EVENT query (engine extensions of the paper's query set).

#include <gtest/gtest.h>

#include <algorithm>

#include "core/burst_engine.h"
#include "core/exact_store.h"
#include "util/random.h"

namespace bursthist {
namespace {

// Stream where events {2, 9, 20, 33} burst at t=500 with strengths
// 4x, 3x, 2x, 1x; everything else trickles.
EventStream GradedBurstStream(EventId k, Rng* rng) {
  std::vector<SingleEventStream> per_event(k);
  const std::vector<std::pair<EventId, int>> bursts = {
      {2, 8}, {9, 6}, {20, 4}, {33, 2}};
  for (EventId e = 0; e < k; ++e) {
    std::vector<Timestamp> times;
    Timestamp t = static_cast<Timestamp>(rng->NextBelow(7));
    while (t < 1200) {
      times.push_back(t);
      t += 25 + static_cast<Timestamp>(rng->NextBelow(10));
    }
    for (const auto& [be, reps] : bursts) {
      if (be != e) continue;
      for (Timestamp bt = 500; bt < 550; ++bt) {
        for (int rep = 0; rep < reps; ++rep) times.push_back(bt);
      }
    }
    std::sort(times.begin(), times.end());
    per_event[e] = SingleEventStream(std::move(times));
  }
  return MergeStreams(per_event);
}

BurstEngineOptions<Pbe1> Options(EventId k) {
  BurstEngineOptions<Pbe1> o;
  o.universe_size = k;
  o.grid.depth = 4;
  o.grid.width = 256;
  o.cell.buffer_points = 128;
  o.cell.budget_points = 128;  // lossless cells for crisp ranking
  o.heavy_hitter_capacity = 16;
  return o;
}

class TopKTest : public ::testing::Test {
 protected:
  static constexpr EventId kUniverse = 48;

  void SetUp() override {
    Rng rng(2024);
    stream_ = GradedBurstStream(kUniverse, &rng);
    engine_ = std::make_unique<BurstEngine1>(Options(kUniverse));
    exact_ = std::make_unique<ExactBurstStore>(kUniverse);
    ASSERT_TRUE(engine_->AppendStream(stream_).ok());
    ASSERT_TRUE(exact_->AppendStream(stream_).ok());
    engine_->Finalize();
  }

  EventStream stream_;
  std::unique_ptr<BurstEngine1> engine_;
  std::unique_ptr<ExactBurstStore> exact_;
};

TEST_F(TopKTest, RankingMatchesInjectedStrengths) {
  auto top = engine_->TopKBurstyEvents(549, 4, 50);
  ASSERT_EQ(top.size(), 4u);
  EXPECT_EQ(top[0].first, 2u);
  EXPECT_EQ(top[1].first, 9u);
  EXPECT_EQ(top[2].first, 20u);
  EXPECT_EQ(top[3].first, 33u);
  // Scores descend.
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].second, top[i].second);
  }
}

TEST_F(TopKTest, MatchesExactTopK) {
  // Exact top-4 by burstiness.
  std::vector<std::pair<EventId, Burstiness>> all;
  for (EventId e = 0; e < kUniverse; ++e) {
    all.emplace_back(e, exact_->BurstinessAt(e, 549, 50));
  }
  std::sort(all.begin(), all.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  auto top = engine_->TopKBurstyEvents(549, 4, 50);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(top[i].first, all[i].first) << "rank " << i;
  }
}

TEST_F(TopKTest, UsesFewerPointQueriesThanScan) {
  (void)engine_->TopKBurstyEvents(549, 3, 50);
  EXPECT_LT(engine_->index().LastQueryPointQueries(),
            static_cast<size_t>(kUniverse));
}

TEST_F(TopKTest, KLargerThanUniverse) {
  auto top = engine_->TopKBurstyEvents(549, 1000, 50);
  EXPECT_LE(top.size(), static_cast<size_t>(kUniverse));
  EXPECT_GE(top.size(), 4u);
}

TEST_F(TopKTest, FrequencyFilterDropsRareBursts) {
  // Event 33 bursts (2/s for 50 s = 100 mentions) on a sparse
  // baseline; with a frequency threshold above its total it must
  // disappear while the heavy bursts stay.
  const double theta = 40.0;
  auto unfiltered = engine_->BurstyEventQuery(549, theta, 50);
  ASSERT_TRUE(std::find(unfiltered.begin(), unfiltered.end(), 33u) !=
              unfiltered.end());
  const double f33 = engine_->CumulativeQuery(33, 549);
  auto filtered =
      engine_->FrequentBurstyEventQuery(549, theta, 50, f33 + 50.0);
  EXPECT_TRUE(std::find(filtered.begin(), filtered.end(), 33u) ==
              filtered.end());
  EXPECT_TRUE(std::find(filtered.begin(), filtered.end(), 2u) !=
              filtered.end());
}

TEST_F(TopKTest, HeavyHittersTrackTheBursters) {
  auto hitters = engine_->HeavyHitters(4);
  ASSERT_EQ(hitters.size(), 4u);
  // The four bursting events dominate the volume.
  std::vector<EventId> keys;
  for (const auto& e : hitters) keys.push_back(static_cast<EventId>(e.key));
  std::sort(keys.begin(), keys.end());
  EXPECT_EQ(keys, (std::vector<EventId>{2, 9, 20, 33}));
}

TEST_F(TopKTest, HeavyHittersSurviveSerialization) {
  BinaryWriter w;
  engine_->Serialize(&w);
  BurstEngine1 back(Options(kUniverse));
  BinaryReader r(w.bytes());
  ASSERT_TRUE(back.Deserialize(&r).ok());
  auto a = engine_->HeavyHitters(4);
  auto b = back.HeavyHitters(4);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key, b[i].key);
    EXPECT_EQ(a[i].count, b[i].count);
  }
}

// Regression: the best-first cutoff used to compare frontier scores
// against the SQUARE of the k-th leaf's burstiness. With an
// all-decelerating universe the k-th value is negative, its square is
// large and positive, and the search stopped immediately — returning
// the MOST negative events (largest |b|, explored first) instead of
// the least negative ones.
TEST(TopKNegativeBurstinessTest, RanksDeceleratingEventsCorrectly) {
  const EventId k = 8;
  CmPbeOptions grid;
  grid.depth = 1;
  grid.width = 16;  // >= universe: every level is identity-hashed/exact
  Pbe1Options cell;
  cell.buffer_points = 128;
  cell.budget_points = 128;  // lossless
  DyadicBurstIndex<Pbe1> index(k, grid, cell);
  // Event e occurs (e + 1) times at t = 150 and never again: at t = 300
  // with tau = 100, b_e = (e + 1) - 2 * (e + 1) + 0 = -(e + 1).
  for (EventId e = 0; e < k; ++e) {
    index.Append(e, 150, e + 1);
  }
  index.Finalize();

  auto top = index.TopKBurstyEvents(300, 3, 100);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].first, 0u);
  EXPECT_EQ(top[1].first, 1u);
  EXPECT_EQ(top[2].first, 2u);
  EXPECT_DOUBLE_EQ(top[0].second, -1.0);
  EXPECT_DOUBLE_EQ(top[1].second, -2.0);
  EXPECT_DOUBLE_EQ(top[2].second, -3.0);
}

TEST(TopKNegativeBurstinessTest, MixedSignsKeepPositiveFirst) {
  const EventId k = 8;
  CmPbeOptions grid;
  grid.depth = 1;
  grid.width = 16;
  Pbe1Options cell;
  cell.buffer_points = 128;
  cell.budget_points = 128;
  DyadicBurstIndex<Pbe1> index(k, grid, cell);
  for (EventId e = 0; e < 7; ++e) {
    index.Append(e, 150, e + 1);  // decelerating by t = 300
  }
  index.Append(7, 250, 5);  // accelerating at t = 300: b = +5
  index.Finalize();

  auto top = index.TopKBurstyEvents(300, 2, 100);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].first, 7u);
  EXPECT_DOUBLE_EQ(top[0].second, 5.0);
  EXPECT_EQ(top[1].first, 0u);
  EXPECT_DOUBLE_EQ(top[1].second, -1.0);
}

TEST(TopKEdgeTest, EmptyEngine) {
  BurstEngineOptions<Pbe1> o;
  o.universe_size = 8;
  BurstEngine1 engine(o);
  engine.Finalize();
  auto top = engine.TopKBurstyEvents(100, 3, 10);
  EXPECT_LE(top.size(), 3u);
  for (const auto& [e, b] : top) {
    EXPECT_LT(e, 8u);
    EXPECT_EQ(b, 0.0);
  }
  EXPECT_TRUE(engine.HeavyHitters().empty());
}

}  // namespace
}  // namespace bursthist
