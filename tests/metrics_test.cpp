// Unit tests for the evaluation metrics (eval/metrics.h) and the
// observability layer (obs/metrics.h): registry concurrency, histogram
// bucket semantics, exposition golden output, and the
// BURSTHIST_NO_METRICS stub surface.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "core/pbe1.h"
#include "eval/metrics.h"
#include "obs/metrics.h"

namespace bursthist {
namespace {

TEST(ErrorAccumulatorTest, Stats) {
  ErrorAccumulator acc;
  acc.Add(10.0, 12.0);  // err 2
  acc.Add(5.0, 1.0);    // err 4
  auto s = acc.Stats();
  EXPECT_EQ(s.queries, 2u);
  EXPECT_DOUBLE_EQ(s.mean_abs, 3.0);
  EXPECT_DOUBLE_EQ(s.max_abs, 4.0);
  EXPECT_DOUBLE_EQ(s.root_mean_square, std::sqrt(10.0));
}

TEST(ErrorAccumulatorTest, EmptyIsZero) {
  ErrorAccumulator acc;
  auto s = acc.Stats();
  EXPECT_EQ(s.queries, 0u);
  EXPECT_EQ(s.mean_abs, 0.0);
}

TEST(SampleQueryTimesTest, InRangeAndDeterministic) {
  Rng a(5), b(5);
  auto qa = SampleQueryTimes(100, 200, 50, &a);
  auto qb = SampleQueryTimes(100, 200, 50, &b);
  EXPECT_EQ(qa, qb);
  for (Timestamp t : qa) {
    EXPECT_GE(t, 100);
    EXPECT_LE(t, 200);
  }
}

TEST(CompareIdSetsTest, PerfectMatch) {
  auto pr = CompareIdSets({1, 2, 3}, {1, 2, 3});
  EXPECT_DOUBLE_EQ(pr.precision, 1.0);
  EXPECT_DOUBLE_EQ(pr.recall, 1.0);
  EXPECT_EQ(pr.hits, 3u);
  EXPECT_DOUBLE_EQ(pr.F1(), 1.0);
}

TEST(CompareIdSetsTest, PartialOverlap) {
  auto pr = CompareIdSets({1, 2, 4, 9}, {2, 3, 4});
  EXPECT_DOUBLE_EQ(pr.precision, 0.5);      // 2 of 4 reported
  EXPECT_DOUBLE_EQ(pr.recall, 2.0 / 3.0);   // 2 of 3 relevant
}

TEST(CompareIdSetsTest, EmptySets) {
  auto both = CompareIdSets({}, {});
  EXPECT_DOUBLE_EQ(both.precision, 1.0);
  EXPECT_DOUBLE_EQ(both.recall, 1.0);

  auto none_reported = CompareIdSets({}, {1});
  EXPECT_DOUBLE_EQ(none_reported.precision, 1.0);
  EXPECT_DOUBLE_EQ(none_reported.recall, 0.0);

  auto all_false = CompareIdSets({1}, {});
  EXPECT_DOUBLE_EQ(all_false.precision, 0.0);
  EXPECT_DOUBLE_EQ(all_false.recall, 1.0);
}

TEST(PrecisionRecallAverageTest, Averages) {
  PrecisionRecallAverage avg;
  PrecisionRecall a;
  a.precision = 1.0;
  a.recall = 0.5;
  PrecisionRecall b;
  b.precision = 0.0;
  b.recall = 1.0;
  avg.Add(a);
  avg.Add(b);
  EXPECT_DOUBLE_EQ(avg.MeanPrecision(), 0.5);
  EXPECT_DOUBLE_EQ(avg.MeanRecall(), 0.75);
}

TEST(MeasurePointErrorTest, ZeroForExactModel) {
  SingleEventStream s({1, 4, 4, 9, 12});
  Pbe1Options opt;
  opt.buffer_points = 10;
  opt.budget_points = 10;
  Pbe1 pbe(opt);
  for (Timestamp t : s.times()) pbe.Append(t);
  pbe.Finalize();
  auto stats =
      MeasurePointError(pbe, s, {0, 3, 4, 8, 9, 12, 15}, /*tau=*/3);
  EXPECT_EQ(stats.queries, 7u);
  EXPECT_DOUBLE_EQ(stats.mean_abs, 0.0);
  EXPECT_DOUBLE_EQ(stats.max_abs, 0.0);
}

// ---- observability layer (obs/metrics.h) -------------------------------

// The instrumentation macros must compile and run in BOTH build modes
// (real and BURSTHIST_NO_METRICS) with no #ifdef at the call site —
// this test body is exactly what an instrumented function looks like.
TEST(ObsMacrosTest, CallSitePatternCompilesInBothModes) {
  BURSTHIST_COUNTER(m_count, obs::kEngineAppendsTotal);
  BURSTHIST_GAUGE(m_gauge, obs::kEngineReorderDepth);
  BURSTHIST_LATENCY_HISTOGRAM(m_lat, obs::kQueryPointLatencySeconds);
  m_count.Inc();
  m_gauge.Set(3.0);
  { obs::TraceSpan span(m_lat, "test"); }
  std::string out;
  obs::MetricsRegistry::Global().WritePrometheus(&out);
  EXPECT_FALSE(out.empty());
}

#ifndef BURSTHIST_NO_METRICS

TEST(ObsRegistryTest, CountersUnderEightThreads) {
  obs::MetricsRegistry registry;
  obs::Counter& counter = registry.GetCounter("t_counter", "help");
  obs::Gauge& gauge = registry.GetGauge("t_gauge", "help");
  obs::Histogram& hist =
      registry.GetHistogram("t_hist", "help", {1.0, 10.0});
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 20000;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      for (int j = 0; j < kOpsPerThread; ++j) {
        counter.Inc();
        gauge.Add(1.0);  // integer-valued adds stay exact in a double
        hist.Observe(0.5);
      }
    });
  }
  for (auto& t : threads) t.join();
  const uint64_t expect = uint64_t{kThreads} * kOpsPerThread;
  EXPECT_EQ(counter.Value(), expect);
  EXPECT_DOUBLE_EQ(gauge.Value(), static_cast<double>(expect));
  EXPECT_EQ(hist.Count(), expect);
  EXPECT_EQ(hist.BucketCount(0), expect);  // every observation <= 1.0
}

TEST(ObsRegistryTest, SameNameReturnsSameHandle) {
  obs::MetricsRegistry registry;
  obs::Counter& a = registry.GetCounter("c", "help");
  obs::Counter& b = registry.GetCounter("c", "other help ignored");
  EXPECT_EQ(&a, &b);
  a.Inc(5);
  EXPECT_EQ(b.Value(), 5u);
}

TEST(ObsHistogramTest, BucketBoundariesAreLeInclusive) {
  obs::Histogram h({1.0, 2.0, 4.0});
  h.Observe(0.5);  // bucket 0
  h.Observe(1.0);  // bucket 0: le="1" includes exactly 1.0
  h.Observe(1.5);  // bucket 1
  h.Observe(2.0);  // bucket 1
  h.Observe(4.0);  // bucket 2
  h.Observe(4.1);  // overflow (+Inf) bucket
  EXPECT_EQ(h.BucketCount(0), 2u);
  EXPECT_EQ(h.BucketCount(1), 2u);
  EXPECT_EQ(h.BucketCount(2), 1u);
  EXPECT_EQ(h.BucketCount(3), 1u);
  EXPECT_EQ(h.Count(), 6u);
  EXPECT_DOUBLE_EQ(h.Sum(), 0.5 + 1.0 + 1.5 + 2.0 + 4.0 + 4.1);
}

TEST(ObsExpositionTest, PrometheusGoldenOutput) {
  obs::MetricsRegistry registry;
  registry.GetCounter("t_counter", "Things counted.").Inc(3);
  registry.GetGauge("t_gauge", "A level.").Set(2.5);
  obs::Histogram& h = registry.GetHistogram("t_hist", "Latencies.",
                                            {1.0, 2.5});
  h.Observe(0.5);
  h.Observe(2.0);
  h.Observe(7.0);
  std::string out;
  registry.WritePrometheus(&out);
  EXPECT_EQ(out,
            "# HELP t_counter Things counted.\n"
            "# TYPE t_counter counter\n"
            "t_counter 3\n"
            "# HELP t_gauge A level.\n"
            "# TYPE t_gauge gauge\n"
            "t_gauge 2.5\n"
            "# HELP t_hist Latencies.\n"
            "# TYPE t_hist histogram\n"
            "t_hist_bucket{le=\"1\"} 1\n"
            "t_hist_bucket{le=\"2.5\"} 2\n"
            "t_hist_bucket{le=\"+Inf\"} 3\n"
            "t_hist_sum 9.5\n"
            "t_hist_count 3\n");
}

TEST(ObsExpositionTest, JsonGoldenOutput) {
  obs::MetricsRegistry registry;
  registry.GetCounter("t_counter", "h").Inc(3);
  registry.GetGauge("t_gauge", "h").Set(2.5);
  obs::Histogram& h = registry.GetHistogram("t_hist", "h", {1.0, 2.5});
  h.Observe(0.5);
  h.Observe(7.0);
  std::string out;
  registry.WriteJson(&out);
  EXPECT_EQ(out,
            "{\"counters\":{\"t_counter\":3},"
            "\"gauges\":{\"t_gauge\":2.5},"
            "\"histograms\":{\"t_hist\":{\"count\":2,\"sum\":7.5,"
            "\"buckets\":[[1,1],[2.5,1],[\"+Inf\",2]]}}}");
}

TEST(ObsStandardMetricsTest, EveryDeclaredMetricRegisters) {
  obs::MetricsRegistry registry;
  obs::RegisterStandardMetrics(&registry);
  const auto names = registry.Names();
  EXPECT_EQ(names.size(), obs::StandardMetrics().size());
  for (const auto& m : obs::StandardMetrics()) {
    EXPECT_NE(std::find(names.begin(), names.end(), m.name), names.end())
        << m.name;
  }
  // Exposition of the freshly registered set shows every metric with a
  // zero value and a help line (no gaps for untouched metrics).
  std::string out;
  registry.WritePrometheus(&out);
  for (const auto& m : obs::StandardMetrics()) {
    EXPECT_NE(out.find(std::string("# HELP ") + m.name), std::string::npos)
        << m.name;
  }
}

TEST(ObsTraceRingTest, WrapsAndSnapshotsOldestFirst) {
  obs::TraceRing& ring = obs::TraceRing::Global();
  ring.Enable(4);
  for (uint64_t i = 0; i < 6; ++i) {
    ring.Record("ev", /*start_us=*/i, /*duration_seconds=*/0.0);
  }
  const auto events = ring.Snapshot();
  ring.Disable();
  ASSERT_EQ(events.size(), 4u);
  // 6 records into a 4-slot ring: 0 and 1 overwritten, 2..5 survive.
  for (uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].start_us, i + 2);
  }
}

TEST(ObsTraceSpanTest, ObservesHistogramOnDestruction) {
  obs::Histogram h({1.0});
  { obs::TraceSpan span(h); }
  EXPECT_EQ(h.Count(), 1u);
  EXPECT_GE(h.Sum(), 0.0);
}

#else  // BURSTHIST_NO_METRICS

// Compiled-out mode: the stubs must report the layer as absent rather
// than silently emitting empty-but-plausible telemetry.
TEST(ObsCompiledOutTest, ExpositionSaysCompiledOut) {
  std::string prom;
  obs::MetricsRegistry::Global().WritePrometheus(&prom);
  EXPECT_NE(prom.find("compiled out"), std::string::npos);
  std::string json;
  obs::MetricsRegistry::Global().WriteJson(&json);
  EXPECT_EQ(json, "{}");
  EXPECT_EQ(obs::FormatStatsLine(), "");
  EXPECT_FALSE(obs::TraceRing::Global().enabled());
}

#endif  // BURSTHIST_NO_METRICS

}  // namespace
}  // namespace bursthist
