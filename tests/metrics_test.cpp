// Unit tests for the evaluation metrics.

#include <gtest/gtest.h>

#include "core/pbe1.h"
#include "eval/metrics.h"

namespace bursthist {
namespace {

TEST(ErrorAccumulatorTest, Stats) {
  ErrorAccumulator acc;
  acc.Add(10.0, 12.0);  // err 2
  acc.Add(5.0, 1.0);    // err 4
  auto s = acc.Stats();
  EXPECT_EQ(s.queries, 2u);
  EXPECT_DOUBLE_EQ(s.mean_abs, 3.0);
  EXPECT_DOUBLE_EQ(s.max_abs, 4.0);
  EXPECT_DOUBLE_EQ(s.root_mean_square, std::sqrt(10.0));
}

TEST(ErrorAccumulatorTest, EmptyIsZero) {
  ErrorAccumulator acc;
  auto s = acc.Stats();
  EXPECT_EQ(s.queries, 0u);
  EXPECT_EQ(s.mean_abs, 0.0);
}

TEST(SampleQueryTimesTest, InRangeAndDeterministic) {
  Rng a(5), b(5);
  auto qa = SampleQueryTimes(100, 200, 50, &a);
  auto qb = SampleQueryTimes(100, 200, 50, &b);
  EXPECT_EQ(qa, qb);
  for (Timestamp t : qa) {
    EXPECT_GE(t, 100);
    EXPECT_LE(t, 200);
  }
}

TEST(CompareIdSetsTest, PerfectMatch) {
  auto pr = CompareIdSets({1, 2, 3}, {1, 2, 3});
  EXPECT_DOUBLE_EQ(pr.precision, 1.0);
  EXPECT_DOUBLE_EQ(pr.recall, 1.0);
  EXPECT_EQ(pr.hits, 3u);
  EXPECT_DOUBLE_EQ(pr.F1(), 1.0);
}

TEST(CompareIdSetsTest, PartialOverlap) {
  auto pr = CompareIdSets({1, 2, 4, 9}, {2, 3, 4});
  EXPECT_DOUBLE_EQ(pr.precision, 0.5);      // 2 of 4 reported
  EXPECT_DOUBLE_EQ(pr.recall, 2.0 / 3.0);   // 2 of 3 relevant
}

TEST(CompareIdSetsTest, EmptySets) {
  auto both = CompareIdSets({}, {});
  EXPECT_DOUBLE_EQ(both.precision, 1.0);
  EXPECT_DOUBLE_EQ(both.recall, 1.0);

  auto none_reported = CompareIdSets({}, {1});
  EXPECT_DOUBLE_EQ(none_reported.precision, 1.0);
  EXPECT_DOUBLE_EQ(none_reported.recall, 0.0);

  auto all_false = CompareIdSets({1}, {});
  EXPECT_DOUBLE_EQ(all_false.precision, 0.0);
  EXPECT_DOUBLE_EQ(all_false.recall, 1.0);
}

TEST(PrecisionRecallAverageTest, Averages) {
  PrecisionRecallAverage avg;
  PrecisionRecall a;
  a.precision = 1.0;
  a.recall = 0.5;
  PrecisionRecall b;
  b.precision = 0.0;
  b.recall = 1.0;
  avg.Add(a);
  avg.Add(b);
  EXPECT_DOUBLE_EQ(avg.MeanPrecision(), 0.5);
  EXPECT_DOUBLE_EQ(avg.MeanRecall(), 0.75);
}

TEST(MeasurePointErrorTest, ZeroForExactModel) {
  SingleEventStream s({1, 4, 4, 9, 12});
  Pbe1Options opt;
  opt.buffer_points = 10;
  opt.budget_points = 10;
  Pbe1 pbe(opt);
  for (Timestamp t : s.times()) pbe.Append(t);
  pbe.Finalize();
  auto stats =
      MeasurePointError(pbe, s, {0, 3, 4, 8, 9, 12, 15}, /*tau=*/3);
  EXPECT_EQ(stats.queries, 7u);
  EXPECT_DOUBLE_EQ(stats.mean_abs, 0.0);
  EXPECT_DOUBLE_EQ(stats.max_abs, 0.0);
}

}  // namespace
}  // namespace bursthist
