// Unit tests for the pre-computed burstiness index (the indexed exact
// baseline of Section II-B).

#include <gtest/gtest.h>

#include "core/burstiness_index.h"
#include "core/exact_store.h"
#include "util/random.h"

namespace bursthist {
namespace {

SingleEventStream RandomStream(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Timestamp> times;
  Timestamp t = 0;
  for (size_t i = 0; i < n; ++i) {
    t += static_cast<Timestamp>(rng.NextBelow(6));
    times.push_back(t);
  }
  return SingleEventStream(std::move(times));
}

TEST(BurstinessIndexTest, PointValuesMatchStream) {
  auto s = RandomStream(400, 1);
  const Timestamp tau = 20;
  BurstinessIndex index(s, tau);
  for (Timestamp t = -5; t <= s.times().back() + 2 * tau + 5; ++t) {
    EXPECT_EQ(index.BurstinessAt(t), s.BurstinessAt(t, tau)) << "t=" << t;
  }
}

TEST(BurstinessIndexTest, BurstyTimesMatchExactStore) {
  auto s = RandomStream(300, 3);
  const Timestamp tau = 15;
  BurstinessIndex index(s, tau);
  ExactBurstStore store(1);
  for (Timestamp t : s.times()) store.Append(0, t);
  for (double theta : {1.0, 2.0, 4.0, 8.0}) {
    EXPECT_EQ(index.BurstyTimes(theta), store.BurstyTimes(0, theta, tau))
        << "theta=" << theta;
  }
}

TEST(BurstinessIndexTest, ThresholdAboveMaxIsEmpty) {
  auto s = RandomStream(200, 5);
  BurstinessIndex index(s, 10);
  EXPECT_TRUE(
      index.BurstyTimes(static_cast<double>(index.MaxBurstiness()) + 1.0)
          .empty());
  EXPECT_FALSE(
      index.BurstyTimes(static_cast<double>(index.MaxBurstiness())).empty());
}

TEST(BurstinessIndexTest, PiecesMergeEqualNeighbours) {
  // A perfectly steady stream has b == 0 almost everywhere; merging
  // keeps the piece count far below 3n.
  std::vector<Timestamp> times;
  for (Timestamp t = 0; t < 3000; t += 10) times.push_back(t);
  SingleEventStream s(std::move(times));
  BurstinessIndex index(s, 10);
  EXPECT_LT(index.piece_count(), s.size());
}

TEST(BurstinessIndexTest, EmptyStream) {
  BurstinessIndex index(SingleEventStream{}, 10);
  EXPECT_EQ(index.piece_count(), 0u);
  EXPECT_EQ(index.BurstinessAt(5), 0);
  EXPECT_TRUE(index.BurstyTimes(1.0).empty());
  EXPECT_EQ(index.MaxBurstiness(), 0);
}

TEST(BurstinessIndexTest, FrozenTauIsTheTradeOff) {
  // The index at tau=5 cannot answer tau=50 questions — that is the
  // documented trade-off vs the PBEs. Just pin the API contract.
  auto s = RandomStream(100, 7);
  BurstinessIndex index(s, 5);
  EXPECT_EQ(index.tau(), 5);
}

}  // namespace
}  // namespace bursthist
