// End-to-end integration: generate a scaled-down olympicrio dataset,
// build every structure in the library, and run the paper's three
// query types against the exact baseline.

#include <gtest/gtest.h>

#include <cmath>

#include "core/burst_queries.h"
#include "core/cm_pbe.h"
#include "core/dyadic_index.h"
#include "core/exact_store.h"
#include "core/pbe1.h"
#include "core/pbe2.h"
#include "eval/metrics.h"
#include "gen/scenarios.h"

namespace bursthist {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ScenarioConfig cfg;
    cfg.scale = 0.004;  // ~20k records over K=864, 31 days
    cfg.seed = 20160805;
    dataset_ = new Dataset(MakeOlympicRio(cfg));
    exact_ = new ExactBurstStore(dataset_->universe_size);
    ASSERT_TRUE(exact_->AppendStream(dataset_->stream).ok());
  }
  static void TearDownTestSuite() {
    delete exact_;
    delete dataset_;
    exact_ = nullptr;
    dataset_ = nullptr;
  }

  static Dataset* dataset_;
  static ExactBurstStore* exact_;
};

Dataset* IntegrationTest::dataset_ = nullptr;
ExactBurstStore* IntegrationTest::exact_ = nullptr;

TEST_F(IntegrationTest, SingleEventPipelineBothEstimators) {
  // Project the soccer stream (event 0) and push it through both
  // single-stream estimators.
  SingleEventStream soccer = dataset_->stream.Project(0);
  ASSERT_GT(soccer.size(), 1000u);

  Pbe1Options o1;
  o1.buffer_points = 512;
  o1.budget_points = 128;
  Pbe1 p1(o1);
  Pbe2Options o2;
  o2.gamma = 4.0;
  Pbe2 p2(o2);
  for (Timestamp t : soccer.times()) {
    p1.Append(t);
    p2.Append(t);
  }
  p1.Finalize();
  p2.Finalize();

  Rng qrng(1);
  auto times = SampleQueryTimes(0, dataset_->t_end, 200, &qrng);
  auto s1 = MeasurePointError(p1, soccer, times, kSecondsPerDay);
  auto s2 = MeasurePointError(p2, soccer, times, kSecondsPerDay);
  // Error scale sanity: daily burstiness of soccer at this scale
  // reaches thousands; the estimates must track far closer.
  EXPECT_LT(s1.mean_abs, 50.0);
  EXPECT_LT(s2.mean_abs, 4.0 * o2.gamma);
  // Both use far less space than the raw stream.
  EXPECT_LT(p1.SizeBytes(), soccer.SizeBytes());
  EXPECT_LT(p2.SizeBytes(), soccer.SizeBytes());
}

TEST_F(IntegrationTest, CmPbeGridAnswersAllEvents) {
  // Every id in the universe gets an answer, and at stream end the
  // cumulative estimates respect the Count-Min epsilon envelope for
  // the vast majority of events.
  Pbe1Options cell;
  cell.buffer_points = 512;
  cell.budget_points = 128;
  CmPbeOptions grid = CmPbeOptions::FromGuarantee(0.05, 0.2);
  CmPbe<Pbe1> cm(grid, cell);
  for (const auto& r : dataset_->stream.records()) cm.Append(r.id, r.time);
  cm.Finalize();

  const double eps_n = 0.05 * static_cast<double>(dataset_->stream.size());
  size_t within = 0;
  for (EventId e = 0; e < dataset_->universe_size; ++e) {
    const double est = cm.EstimateCumulative(e, dataset_->t_end);
    const double ref =
        static_cast<double>(exact_->CumulativeFrequency(e, dataset_->t_end));
    EXPECT_GE(est, -1e-9);
    if (std::abs(est - ref) <= eps_n) ++within;
  }
  EXPECT_GE(within, static_cast<size_t>(dataset_->universe_size) * 3 / 4);
}

TEST_F(IntegrationTest, CmPbeAccuracyWithinLemma5Scale) {
  Pbe1Options cell;
  cell.buffer_points = 512;
  cell.budget_points = 128;
  CmPbeOptions grid = CmPbeOptions::FromGuarantee(0.05, 0.2);
  CmPbe<Pbe1> cm(grid, cell);
  for (const auto& r : dataset_->stream.records()) cm.Append(r.id, r.time);
  cm.Finalize();

  const double n_total = static_cast<double>(dataset_->stream.size());
  Rng qrng(3);
  size_t within = 0;
  const size_t trials = 200;
  for (size_t i = 0; i < trials; ++i) {
    const EventId e =
        static_cast<EventId>(qrng.NextBelow(dataset_->universe_size));
    const Timestamp t =
        static_cast<Timestamp>(qrng.NextBelow(dataset_->t_end));
    const double est = cm.EstimateBurstiness(e, t, kSecondsPerDay);
    const double ref =
        static_cast<double>(exact_->BurstinessAt(e, t, kSecondsPerDay));
    // Lemma 5 bound with eps = 0.05 plus the PBE Delta term; we use a
    // generous multiple of eps*N as the acceptance envelope.
    if (std::abs(est - ref) <= 0.05 * n_total) ++within;
  }
  // delta = 0.2 -> at least ~80% within; demand 75% for slack.
  EXPECT_GE(within, trials * 3 / 4);
}

TEST_F(IntegrationTest, BurstyEventDetectionPrecisionRecall) {
  Pbe1Options cell;
  cell.buffer_points = 512;
  cell.budget_points = 128;
  CmPbeOptions grid = CmPbeOptions::FromGuarantee(0.05, 0.2);
  DyadicBurstIndex<Pbe1> index(dataset_->universe_size, grid, cell);
  for (const auto& r : dataset_->stream.records()) index.Append(r.id, r.time);
  index.Finalize();

  const Timestamp tau = kSecondsPerDay;
  Rng qrng(4);
  auto times = SampleQueryTimes(tau, dataset_->t_end, 15, &qrng);
  auto run = [&](DyadicPruneRule rule) {
    index.set_prune_rule(rule);
    PrecisionRecallAverage avg;
    for (Timestamp t : times) {
      // Threshold at a noticeable fraction of this instant's peak.
      Burstiness peak = 0;
      for (EventId e = 0; e < dataset_->universe_size; ++e) {
        peak = std::max(peak, exact_->BurstinessAt(e, t, tau));
      }
      if (peak < 20) continue;
      const double theta = 0.3 * static_cast<double>(peak);
      auto got = index.BurstyEvents(t, theta, tau);
      auto truth = exact_->BurstyEvents(t, theta, tau);
      if (got.empty() && truth.empty()) continue;
      avg.Add(CompareIdSets(got, truth));
    }
    return avg;
  };

  // The paper's parent-based rule inherits the parent level's
  // collision noise; the children-only rule is algebraically the same
  // bound with less noise (see DESIGN.md and ablation_prune_rule).
  auto paper = run(DyadicPruneRule::kPaper);
  ASSERT_GT(paper.queries, 0u);
  EXPECT_GE(paper.MeanRecall(), 0.5);
  EXPECT_GE(paper.MeanPrecision(), 0.7);

  auto children = run(DyadicPruneRule::kChildren);
  ASSERT_GT(children.queries, 0u);
  EXPECT_GE(children.MeanRecall(), 0.7);
  EXPECT_GE(children.MeanPrecision(), 0.7);
  EXPECT_GE(children.MeanRecall(), paper.MeanRecall() - 1e-9);
}

TEST_F(IntegrationTest, BurstyTimeConsistencyAcrossStructures) {
  SingleEventStream soccer = dataset_->stream.Project(0);
  Pbe1Options o1;
  o1.buffer_points = 512;
  o1.budget_points = 256;
  Pbe1 p1(o1);
  for (Timestamp t : soccer.times()) p1.Append(t);
  p1.Finalize();

  const Timestamp tau = kSecondsPerDay;
  Burstiness peak = 0;
  for (Timestamp d = 1; d <= 31; ++d) {
    peak = std::max(peak, soccer.BurstinessAt(d * kSecondsPerDay, tau));
  }
  ASSERT_GT(peak, 0);
  const double theta = 0.5 * static_cast<double>(peak);

  ExactEventModel exact_model(&soccer);
  auto exact_iv = BurstyTimes(exact_model, theta, tau);
  auto approx_iv = BurstyTimes(p1, theta, tau);
  ASSERT_FALSE(exact_iv.empty());
  ASSERT_FALSE(approx_iv.empty());
  // The approximate intervals overlap the exact ones: check midpoints
  // of exact intervals are near an approximate interval.
  for (const auto& iv : exact_iv) {
    const Timestamp mid = iv.begin + (iv.end - iv.begin) / 2;
    bool near = false;
    for (const auto& av : approx_iv) {
      if (mid >= av.begin - tau / 4 && mid <= av.end + tau / 4) {
        near = true;
        break;
      }
    }
    EXPECT_TRUE(near) << "exact burst at " << mid
                      << " missed by the approximation";
  }
}

TEST_F(IntegrationTest, FullGridSerializationSurvivesRoundTrip) {
  Pbe2Options cell;
  cell.gamma = 6.0;
  CmPbeOptions grid;
  grid.depth = 3;
  grid.width = 32;
  CmPbe<Pbe2> cm(grid, cell);
  for (const auto& r : dataset_->stream.records()) cm.Append(r.id, r.time);
  cm.Finalize();

  BinaryWriter w;
  cm.Serialize(&w);
  CmPbe<Pbe2> back(grid, cell);
  BinaryReader r(w.bytes());
  ASSERT_TRUE(back.Deserialize(&r).ok());
  Rng qrng(5);
  for (int i = 0; i < 100; ++i) {
    const EventId e =
        static_cast<EventId>(qrng.NextBelow(dataset_->universe_size));
    const Timestamp t =
        static_cast<Timestamp>(qrng.NextBelow(dataset_->t_end));
    EXPECT_DOUBLE_EQ(back.EstimateBurstiness(e, t, kSecondsPerDay),
                     cm.EstimateBurstiness(e, t, kSecondsPerDay));
  }
}

}  // namespace
}  // namespace bursthist
