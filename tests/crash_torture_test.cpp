// Crashpoint torture: REAL SIGKILL mid-durability-protocol, then
// recover and hold the recovery contract (see
// differential/torture_harness.h for the contract and machinery).
//
// Four layers:
//
//  * RECON     trace-mode in-process run enumerating which crashpoint
//              sites the workload actually reaches — the sweep matrix
//              is derived, never hand-kept, so a site that silently
//              stops being exercised fails the recon floor.
//  * SWEEP     every reached site x seeds, kill at a seed-varied hit
//              number, recover + verify + converge.
//  * ERROR     the same sites in error mode: the injected Status must
//              surface cleanly and leave the directory
//              prefix-consistent (no kill, so also no torn state).
//  * CHAOS     randomized (site, hit) kills against ONE directory that
//              is repeatedly crashed, recovered, and resumed until the
//              workload completes — the double/triple-crash schedules
//              no enumerated matrix covers.
//
// Plus a replication scenario: leader + shipper + follower all in one
// child process, killed at the repl.* sites; the parent verifies both
// directories independently and then converges the follower to the
// finished leader over real replication.
//
// Matrix scale is environment-tunable so CI can go deep while local
// runs stay quick: BURSTHIST_TORTURE_SEEDS (default 3) and
// BURSTHIST_TORTURE_CYCLES (default 12).

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdlib>
#include <mutex>
#include <string>
#include <vector>

#include "differential/torture_harness.h"
#include "fault/crashpoint.h"
#include "replication/replica_engine.h"
#include "replication/wal_shipper.h"
#include "util/random.h"

namespace bursthist {
namespace test {
namespace {

#ifdef BURSTHIST_NO_FAULT

TEST(CrashTorture, RequiresFaultSupport) {
  GTEST_SKIP() << "built with BURSTHIST_NO_FAULT: crashpoints compile to "
                  "no-ops, nothing to torture";
}

#else  // !BURSTHIST_NO_FAULT

using torture::ChildOutcome;
using torture::ForkTortureChild;
using torture::ReconSites;
using torture::RunTortureCycle;
using torture::TortureSpec;
using torture::TortureWorkload;
using torture::Verdict;
using torture::VerifyRecovered;

size_t EnvSizeOr(const char* name, size_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(raw, &end, 10);
  return (end != nullptr && *end == '\0' && v > 0) ? static_cast<size_t>(v)
                                                   : fallback;
}

class CrashTortureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = Env::Default();
    root_ = testing::TempDir() + "/bursthist_torture_" +
            std::to_string(static_cast<unsigned long long>(::getpid())) + "_" +
            std::to_string(reinterpret_cast<uintptr_t>(this));
    fault::FaultScheduler::Global().Disarm();
    ASSERT_TRUE(env_->CreateDirIfMissing(root_).ok());
  }

  void TearDown() override {
    fault::FaultScheduler::Global().Disarm();
    auto names = env_->ListDir(root_);
    if (names.ok()) {
      for (const auto& n : names.value()) RemoveTree(root_ + "/" + n);
    }
    ::rmdir(root_.c_str());
  }

  // Scratch dirs live under root_ so TearDown sweeps whatever a failed
  // cycle leaves behind.
  std::string FreshDir(const std::string& name) {
    const std::string dir = root_ + "/" + name;
    RemoveTree(dir);
    EXPECT_TRUE(env_->CreateDirIfMissing(dir).ok());
    return dir;
  }

  void RemoveTree(const std::string& dir) {
    auto names = env_->ListDir(dir);
    if (names.ok()) {
      for (const auto& n : names.value()) (void)env_->DeleteFile(dir + "/" + n);
    }
    ::rmdir(dir.c_str());
    ::unlink(dir.c_str());
  }

  Env* env_ = nullptr;
  std::string root_;
};

// ---------------------------------------------------------------------------
// Recon
// ---------------------------------------------------------------------------

// The single-engine workload must reach the full durability-protocol
// crash surface. This is the floor the sweep matrix stands on: if an
// edit stops exercising a site, this fails before the sweep silently
// shrinks.
TEST_F(CrashTortureTest, ReconReachesDurabilitySurface) {
  const auto sites = ReconSites(env_, FreshDir("recon"), TortureSpec{});
  auto hits = [&](const std::string& site) -> uint64_t {
    for (const auto& [name, count] : sites) {
      if (name == site) return count;
    }
    return 0;
  };
  for (const char* site :
       {"wal.append.pre_write", "wal.append.post_write",
        "wal.batch.post_write", "wal.rotate.pre_open",
        "wal.segment.pre_dir_sync", "snapshot.post_tmp_write",
        "snapshot.post_tmp_fsync", "snapshot.pre_rename",
        "snapshot.pre_dir_fsync", "checkpoint.pre_rotate", "checkpoint.mid",
        "checkpoint.post_snapshot"}) {
    EXPECT_GE(hits(site), 1u) << "workload no longer reaches crashpoint "
                              << site;
  }
  EXPECT_GE(sites.size(), 12u);
}

// ---------------------------------------------------------------------------
// Sweep: every reached site x seeds, kill mode
// ---------------------------------------------------------------------------

TEST_F(CrashTortureTest, KillSweepEveryReachedSite) {
  const size_t seeds = EnvSizeOr("BURSTHIST_TORTURE_SEEDS", 3);
  const std::string ack = root_ + "/sweep.ack";
  size_t cycles = 0;
  for (size_t seed = 1; seed <= seeds; ++seed) {
    TortureSpec spec;
    spec.seed = seed;
    // Recon per seed: families differ per seed, so reach and hit
    // counts differ too.
    const auto sites = ReconSites(env_, FreshDir("sweep_recon"), spec);
    ASSERT_FALSE(sites.empty());
    for (const auto& [site, total_hits] : sites) {
      // Vary the kill position with the seed so repeated sweeps cover
      // first, middle, and last occurrences of each site.
      const uint64_t hit = 1 + (seed * 7 + cycles) % total_hits;
      const std::string schedule =
          site + "=kill@" + std::to_string(hit);
      const Verdict v = RunTortureCycle(env_, FreshDir("sweep"), ack,
                                        schedule, spec);
      EXPECT_TRUE(v.ok) << v.detail;
      ++cycles;
    }
  }
  RecordProperty("torture_kill_cycles", static_cast<int>(cycles));
  // 12+ sites x seeds — the matrix must not silently shrink.
  EXPECT_GE(cycles, 12 * seeds);
}

// ---------------------------------------------------------------------------
// Error mode: the injected Status must surface and leave the
// directory prefix-consistent
// ---------------------------------------------------------------------------

TEST_F(CrashTortureTest, ErrorInjectionStaysPrefixConsistent) {
  const std::string ack = root_ + "/error.ack";
  TortureSpec spec;
  spec.seed = 5;
  const auto sites = ReconSites(env_, FreshDir("error_recon"), spec);
  ASSERT_FALSE(sites.empty());
  for (const auto& [site, total_hits] : sites) {
    const uint64_t hit = 1 + total_hits / 2;
    const std::string schedule = site + "=error@" + std::to_string(hit);
    const Verdict v =
        RunTortureCycle(env_, FreshDir("error"), ack, schedule, spec);
    EXPECT_TRUE(v.ok) << v.detail;
  }
}

// ---------------------------------------------------------------------------
// Chaos: randomized repeated kills against one surviving directory
// ---------------------------------------------------------------------------

TEST_F(CrashTortureTest, ChaosRepeatedCrashRecoverResume) {
  const size_t cycles = EnvSizeOr("BURSTHIST_TORTURE_CYCLES", 12);
  const uint64_t chaos_seed = EnvSizeOr("BURSTHIST_TORTURE_CHAOS_SEED", 7);
  Rng rng(chaos_seed);

  TortureSpec spec;
  spec.seed = chaos_seed;
  const auto workload = TortureWorkload(spec);
  const auto sites = ReconSites(env_, FreshDir("chaos_recon"), spec);
  ASSERT_FALSE(sites.empty());

  std::string dir = FreshDir("chaos");
  const std::string ack = root_ + "/chaos.ack";
  uint64_t prev_k = 0;
  size_t completions = 0;
  for (size_t cycle = 0; cycle < cycles; ++cycle) {
    const auto& [site, total_hits] = sites[rng.NextBelow(sites.size())];
    const uint64_t hit = 1 + rng.NextBelow(total_hits);
    const std::string schedule = site + "=kill@" + std::to_string(hit);

    const ChildOutcome child = ForkTortureChild(dir, ack, schedule, spec);
    // Kill-only schedule: the child either dies at the crashpoint or
    // finishes the workload (the scheduled hit lies beyond what the
    // resumed suffix reaches).
    ASSERT_TRUE(child.killed || child.exit_code == torture::kChildCompleted)
        << "cycle " << cycle << " schedule " << schedule << " exit "
        << child.exit_code;

    const Verdict v = VerifyRecovered(env_, dir, workload, child.acked);
    ASSERT_TRUE(v.ok) << "cycle " << cycle << " schedule " << schedule << ": "
                      << v.detail;
    // The child resumed from prev_k and acked every accepted append,
    // so recovery must never regress below prev_k + acked.
    ASSERT_GE(v.recovered_k, prev_k + child.acked)
        << "cycle " << cycle << " lost progress (prev=" << prev_k
        << " acked=" << child.acked << ")";
    prev_k = v.recovered_k;

    if (prev_k == workload.size()) {
      // Workload survived to completion through the crash gauntlet —
      // restart it from scratch for the remaining cycles.
      ++completions;
      dir = FreshDir("chaos");
      prev_k = 0;
    }
  }
  RecordProperty("torture_chaos_completions", static_cast<int>(completions));
}

// ---------------------------------------------------------------------------
// Replication: leader + shipper + follower in one child, killed at
// the repl.* sites
// ---------------------------------------------------------------------------

// The child runs the whole replication topology in one process (a
// kill from any thread takes down leader, shipper, and follower at
// once): ingest half, checkpoint (so a joining empty follower takes
// the bootstrap-snapshot path), attach the follower, ingest the rest,
// wait for convergence. Acks count LEADER appends only.
int RunReplicationChild(Env* env, const std::string& leader_dir,
                        const std::string& follower_dir, int ack_fd,
                        const TortureSpec& spec) {
  using torture::kChildCompleted;
  using torture::kChildInjectedError;
  using torture::kChildSetupFailure;
  const auto workload = TortureWorkload(spec);

  auto leader_or = DurableBurstEngine<Pbe1>::Open(
      env, leader_dir, torture::TortureEngineOptions(),
      torture::TortureDurability());
  if (!leader_or.ok()) return kChildInjectedError;
  auto leader = std::move(leader_or).value();
  std::mutex mu;

  size_t i = static_cast<size_t>(leader->engine().TotalCount());
  if (i > workload.size()) return kChildSetupFailure;
  auto append_until = [&](size_t stop) -> Status {
    for (; i < stop; ++i) {
      std::lock_guard<std::mutex> lock(mu);
      BURSTHIST_RETURN_IF_ERROR(
          leader->Append(workload[i].id, workload[i].time));
      torture::AckAppends(ack_fd, 1);
    }
    return Status::OK();
  };

  const size_t half = workload.size() / 2;
  if (!append_until(std::max(i, half)).ok()) return kChildInjectedError;
  if (!leader->Checkpoint().ok()) return kChildInjectedError;

  repl::WalShipper shipper;
  repl::WalShipperOptions ship_opts;
  ship_opts.poll_interval_ms = 2;
  ship_opts.heartbeat_interval_ms = 25;
  auto state_fn = [&leader, &mu] {
    std::lock_guard<std::mutex> lock(mu);
    return repl::LeaderStatus{leader->wal_position(),
                              leader->engine().Watermark()};
  };
  if (!shipper.Start(env, leader_dir, ship_opts, state_fn).ok()) {
    return kChildSetupFailure;
  }

  repl::ReplicaOptions rep_opts;
  rep_opts.leader_port = shipper.port();
  rep_opts.recv_timeout_ms = 10;
  rep_opts.dead_after_ms = 1000;
  rep_opts.backoff_initial_ms = 2;
  rep_opts.backoff_max_ms = 40;
  rep_opts.backoff_seed = spec.seed + 1;
  auto replica_or = repl::ReplicaEngine<Pbe1>::Open(
      env, follower_dir, torture::TortureEngineOptions(),
      torture::TortureDurability(), rep_opts);
  if (!replica_or.ok()) return kChildInjectedError;
  auto replica = std::move(replica_or).value();
  if (!replica->Start().ok()) return kChildSetupFailure;

  if (!append_until(workload.size()).ok()) return kChildInjectedError;
  if (!leader->Sync().ok()) return kChildInjectedError;

  // Give the scheduled repl.* crashpoint every chance to fire: hold
  // the topology up until the follower reports zero lag (best-effort
  // — the PARENT does all verification, so a slow follower just means
  // the child exits with replication mid-flight, which is itself a
  // fine crash state).
  for (int waited = 0; waited < 30000; waited += 5) {
    if (replica->connected() && replica->lag() == 0) break;
    ::usleep(5000);
  }
  replica->Stop();
  shipper.Stop();
  return kChildCompleted;
}

class ReplicationTortureTest : public CrashTortureTest {
 protected:
  // Mirrors ForkTortureChild but runs the replication topology.
  ChildOutcome ForkReplicationChild(const std::string& leader_dir,
                                    const std::string& follower_dir,
                                    const std::string& ack_path,
                                    const std::string& schedule,
                                    const TortureSpec& spec) {
    ::unlink(ack_path.c_str());
    std::fflush(stdout);
    std::fflush(stderr);
    const pid_t pid = ::fork();
    if (pid == 0) {
      auto& sched = fault::FaultScheduler::Global();
      sched.Disarm();
      if (!schedule.empty() && !sched.LoadSchedule(schedule).ok()) {
        ::_exit(torture::kChildSetupFailure);
      }
      const int ack_fd =
          ::open(ack_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
      if (ack_fd < 0) ::_exit(torture::kChildSetupFailure);
      ::_exit(RunReplicationChild(Env::Default(), leader_dir, follower_dir,
                                  ack_fd, spec));
    }
    ChildOutcome out;
    if (pid < 0) return out;
    int status = 0;
    ::waitpid(pid, &status, 0);
    out.killed = WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL;
    out.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    struct stat st{};
    if (::stat(ack_path.c_str(), &st) == 0) {
      out.acked = static_cast<size_t>(st.st_size);
    }
    return out;
  }
};

TEST_F(ReplicationTortureTest, KillAtReplicationSitesThenConverge) {
  const size_t seeds = EnvSizeOr("BURSTHIST_TORTURE_REPL_SEEDS", 2);
  const struct {
    const char* site;
    uint64_t hit;
  } kSchedules[] = {
      // Follower apply loop, early and deep into the shipped stream.
      {"repl.apply.post_record", 1},
      {"repl.apply.post_record", 40},
      // Shipper about to stream the bootstrap snapshot.
      {"repl.bootstrap.pre_send", 1},
      // Follower about to persist an installed snapshot.
      {"repl.install.pre_checkpoint", 1},
  };
  const std::string ack = root_ + "/repl.ack";
  for (size_t seed = 1; seed <= seeds; ++seed) {
    TortureSpec spec;
    spec.seed = seed;
    const auto workload = TortureWorkload(spec);
    for (const auto& sched : kSchedules) {
      const std::string leader_dir = FreshDir("repl_leader");
      const std::string follower_dir = FreshDir("repl_follower");
      const std::string schedule = std::string(sched.site) + "=kill@" +
                                   std::to_string(sched.hit);
      const ChildOutcome child =
          ForkReplicationChild(leader_dir, follower_dir, ack, schedule, spec);
      // The scheduled site may not fire (e.g. the bootstrap path only
      // runs when the follower joins without state); then the child
      // converges and exits 0, which still verifies below.
      ASSERT_TRUE(child.killed || child.exit_code == torture::kChildCompleted)
          << schedule << " seed " << seed << " exit " << child.exit_code;

      // Leader: ordinary post-crash contract.
      const Verdict lv =
          VerifyRecovered(env_, leader_dir, workload, child.acked);
      ASSERT_TRUE(lv.ok) << schedule << " leader: " << lv.detail;

      // Follower: its recovered state must be SOME reference prefix —
      // replication preserves leader order, a duplicate apply past
      // replicated_through or a skipped record breaks byte identity.
      auto frec = RecoverBurstEngine<Pbe1>(env_, follower_dir,
                                           torture::TortureEngineOptions());
      ASSERT_TRUE(frec.ok()) << schedule
                             << " follower recovery: "
                             << frec.status().ToString();
      const uint64_t m = frec.value().TotalCount();
      ASSERT_LE(m, lv.recovered_k) << "follower ahead of recovered leader";
      EXPECT_EQ(torture::EngineBytes(frec.value()),
                torture::ReferenceBytes(workload, static_cast<size_t>(m)))
          << schedule << " follower not a reference prefix (M=" << m << ")";

      // Converge: finish the leader, re-ship, and require the
      // promoted follower to end byte-identical to the full
      // reference.
      auto leader_or = DurableBurstEngine<Pbe1>::Open(
          env_, leader_dir, torture::TortureEngineOptions(),
          torture::TortureDurability());
      ASSERT_TRUE(leader_or.ok()) << leader_or.status().ToString();
      auto leader = std::move(leader_or).value();
      for (size_t i = static_cast<size_t>(leader->engine().TotalCount());
           i < workload.size(); ++i) {
        ASSERT_TRUE(leader->Append(workload[i].id, workload[i].time).ok());
      }
      ASSERT_TRUE(leader->Sync().ok());
      // Convergence target: the stamped end of the LAST RECORD in the
      // leader log. wal_position() would be wrong whenever the log
      // ends in a freshly-rotated empty segment (rotation on the
      // final append, or reopen with nothing left to append) — no
      // shipped record ever carries that position.
      const WalPosition end = [&] {
        auto seqs = ListWalSegments(env_, leader_dir);
        EXPECT_TRUE(seqs.ok() && !seqs.value().empty());
        WalPosition last{};
        auto replay = ReplayWal(
            env_, leader_dir, WalPosition{seqs.value().front(), 0},
            [&last](WalRecordType, const uint8_t*, size_t,
                    const WalPosition& rec_end) {
              last = rec_end;
              return Status::OK();
            });
        EXPECT_TRUE(replay.ok()) << replay.status().ToString();
        return last;
      }();

      repl::WalShipper shipper;
      repl::WalShipperOptions ship_opts;
      ship_opts.poll_interval_ms = 2;
      ship_opts.heartbeat_interval_ms = 25;
      std::mutex mu;
      auto* leader_raw = leader.get();
      ASSERT_TRUE(shipper
                      .Start(env_, leader_dir, ship_opts,
                             [leader_raw, &mu] {
                               std::lock_guard<std::mutex> lock(mu);
                               return repl::LeaderStatus{
                                   leader_raw->wal_position(),
                                   leader_raw->engine().Watermark()};
                             })
                      .ok());
      repl::ReplicaOptions rep_opts;
      rep_opts.leader_port = shipper.port();
      rep_opts.recv_timeout_ms = 10;
      rep_opts.dead_after_ms = 1000;
      rep_opts.backoff_initial_ms = 2;
      rep_opts.backoff_max_ms = 40;
      rep_opts.backoff_seed = seed + 99;
      auto replica_or = repl::ReplicaEngine<Pbe1>::Open(
          env_, follower_dir, torture::TortureEngineOptions(),
          torture::TortureDurability(), rep_opts);
      ASSERT_TRUE(replica_or.ok()) << replica_or.status().ToString();
      auto replica = std::move(replica_or).value();
      ASSERT_TRUE(replica->Start().ok());
      bool caught_up = false;
      for (int waited = 0; waited < 30000 && !caught_up; waited += 5) {
        caught_up = replica->applied_position() == end;
        if (!caught_up) ::usleep(5000);
      }
      const WalPosition at = replica->applied_position();
      ASSERT_TRUE(caught_up)
          << schedule << " follower never converged: applied={"
          << at.seq << "," << at.offset << "} end={" << end.seq << ","
          << end.offset << "} connected=" << replica->connected()
          << " leader_k=" << leader->engine().TotalCount();
      shipper.Stop();
      ASSERT_TRUE(replica->Promote().ok());
      EXPECT_EQ(torture::EngineBytes(replica->durable()->engine()),
                torture::ReferenceBytes(workload, workload.size()))
          << schedule << " promoted follower diverged from full reference";
    }
  }
}

#endif  // BURSTHIST_NO_FAULT

}  // namespace
}  // namespace test
}  // namespace bursthist
