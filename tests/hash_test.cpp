// Unit tests for the hashing substrate.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "hash/hash.h"

namespace bursthist {
namespace {

TEST(Mix64Test, IsDeterministicAndSpreads) {
  EXPECT_EQ(Mix64(42), Mix64(42));
  std::set<uint64_t> outs;
  for (uint64_t i = 0; i < 1000; ++i) outs.insert(Mix64(i));
  EXPECT_EQ(outs.size(), 1000u);  // injective on this sample
}

TEST(HashBytesTest, StableAndSeedSensitive) {
  EXPECT_EQ(HashBytes("hello", 1), HashBytes("hello", 1));
  EXPECT_NE(HashBytes("hello", 1), HashBytes("hello", 2));
  EXPECT_NE(HashBytes("hello", 1), HashBytes("hellp", 1));
}

TEST(HashBytesTest, HandlesAllTailLengths) {
  std::string s = "abcdefghijklmnop";
  std::set<uint64_t> outs;
  for (size_t len = 0; len <= s.size(); ++len) {
    outs.insert(HashBytes(std::string_view(s.data(), len), 7));
  }
  EXPECT_EQ(outs.size(), s.size() + 1);
}

TEST(PairwiseHashTest, InRange) {
  PairwiseHash h(123, 97);
  for (uint64_t x = 0; x < 10000; ++x) EXPECT_LT(h(x), 97u);
}

TEST(PairwiseHashTest, DeterministicPerSeed) {
  PairwiseHash a(5, 64), b(5, 64), c(6, 64);
  int diff = 0;
  for (uint64_t x = 0; x < 256; ++x) {
    EXPECT_EQ(a(x), b(x));
    diff += (a(x) != c(x));
  }
  EXPECT_GT(diff, 128);  // different seeds give a different function
}

TEST(PairwiseHashTest, RoughlyUniform) {
  const uint64_t range = 16;
  PairwiseHash h(99, range);
  std::vector<int> buckets(range, 0);
  const int n = 160000;
  for (int x = 0; x < n; ++x) ++buckets[h(static_cast<uint64_t>(x))];
  const double expect = static_cast<double>(n) / range;
  for (auto b : buckets) {
    EXPECT_NEAR(static_cast<double>(b), expect, 6.0 * std::sqrt(expect));
  }
}

TEST(PairwiseHashTest, PairwiseIndependenceSample) {
  // For a 2-universal family, Pr[h(x) == h(y)] ~ 1/range over seeds.
  const uint64_t range = 32;
  int collisions = 0;
  const int trials = 20000;
  for (int s = 0; s < trials; ++s) {
    PairwiseHash h(static_cast<uint64_t>(s) * 2654435761ULL + 1, range);
    collisions += (h(17) == h(961748941));
  }
  const double rate = static_cast<double>(collisions) / trials;
  EXPECT_NEAR(rate, 1.0 / range, 0.01);
}

TEST(TabulationHashTest, InRangeAndDeterministic) {
  TabulationHash h(3, 101);
  TabulationHash h2(3, 101);
  for (uint64_t x = 0; x < 5000; ++x) {
    EXPECT_LT(h(x), 101u);
    EXPECT_EQ(h(x), h2(x));
  }
}

TEST(TabulationHashTest, RoughlyUniform) {
  const uint64_t range = 8;
  TabulationHash h(77, range);
  std::vector<int> buckets(range, 0);
  const int n = 80000;
  for (int x = 0; x < n; ++x) ++buckets[h(static_cast<uint64_t>(x))];
  const double expect = static_cast<double>(n) / range;
  for (auto b : buckets) {
    EXPECT_NEAR(static_cast<double>(b), expect, 6.0 * std::sqrt(expect));
  }
}

TEST(HashFamilyTest, ShapeAndIndependence) {
  HashFamily fam(4, 128, 2024);
  EXPECT_EQ(fam.depth(), 4u);
  EXPECT_EQ(fam.width(), 128u);
  // Rows should disagree on most keys.
  int agree = 0;
  for (uint64_t x = 0; x < 512; ++x) {
    agree += (fam.Hash(0, x) == fam.Hash(1, x));
  }
  EXPECT_LT(agree, 40);
}

TEST(HashFamilyTest, SameSeedSameFamily) {
  HashFamily a(3, 64, 9), b(3, 64, 9);
  for (size_t r = 0; r < 3; ++r) {
    for (uint64_t x = 0; x < 100; ++x) EXPECT_EQ(a.Hash(r, x), b.Hash(r, x));
  }
}

}  // namespace
}  // namespace bursthist
