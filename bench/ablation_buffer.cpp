// Ablation — PBE-1 buffer size n at a fixed compression ratio
// kappa = eta / n (Section III-C).
//
// Bigger buffers give the dynamic program a wider optimization window
// (better point placement for the same kappa) at the price of more
// buffering memory and a superlinear DP cost per buffer. The paper
// fixes n = 1500; this table shows what that choice trades away.

#include <cstdio>

#include "bench_common.h"
#include "core/pbe1.h"
#include "eval/metrics.h"
#include "util/stopwatch.h"

using namespace bursthist;
using namespace bursthist::bench;

int main(int argc, char** argv) {
  BenchConfig cfg = ParseArgs(argc, argv);
  Banner(cfg,
         "Ablation: PBE-1 buffer size n at fixed kappa = eta/n = 8%",
         "larger buffers -> equal space, lower error, higher build cost");

  SingleEventStream soccer = MakeSoccer(cfg.Scenario());
  std::printf("soccer: %zu mentions\n\n", soccer.size());
  const double kappa = 0.08;
  std::printf("%8s %8s %12s %12s %12s %12s\n", "n", "eta", "space KB",
              "build ms", "mean err", "max err");
  for (size_t n : {200, 400, 800, 1500, 3000, 6000}) {
    Pbe1Options opt;
    opt.buffer_points = n;
    opt.budget_points =
        std::max<size_t>(2, static_cast<size_t>(kappa * n + 0.5));
    Stopwatch sw;
    Pbe1 pbe(opt);
    for (Timestamp t : soccer.times()) pbe.Append(t);
    pbe.Finalize();
    const double build_ms = sw.Millis();

    Rng qrng(cfg.seed ^ n);
    auto times =
        SampleQueryTimes(0, soccer.times().back(), cfg.queries, &qrng);
    auto stats = MeasurePointError(pbe, soccer, times, kSecondsPerDay);
    std::printf("%8zu %8zu %12.1f %12.1f %12.2f %12.1f\n", n,
                opt.budget_points, pbe.SizeBytes() / 1024.0, build_ms,
                stats.mean_abs, stats.max_abs);
  }
  return 0;
}
