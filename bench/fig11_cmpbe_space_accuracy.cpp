// Figure 11 — CM-PBE space vs accuracy on the two mixed-event
// datasets (eps = 0.05, delta = 0.2 grid as in the paper).
//
// Paper shape: both CM-PBE-1 and CM-PBE-2 reach errors in the
// single-digit range (vs burstiness values beyond 25,000) with a few
// MB; uspolitics needs more space than olympicrio at equal accuracy
// because its event popularity is far more skewed — small budgets
// drop the unpopular events' fluctuations first.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/cm_pbe.h"
#include "core/exact_store.h"
#include "eval/metrics.h"
#include "util/stopwatch.h"

using namespace bursthist;
using namespace bursthist::bench;

namespace {

template <typename PbeT>
void SweepOne(const char* label, const Dataset& ds,
              const ExactBurstStore& exact,
              const std::vector<typename PbeT::Options>& cells,
              const BenchConfig& cfg) {
  CmPbeOptions grid = CmPbeOptions::FromGuarantee(0.05, 0.2, cfg.seed);
  std::printf("  %s (grid d=%zu w=%zu):\n", label, grid.depth, grid.width);
  std::printf("  %14s %12s %12s %12s\n", "space MB", "build s", "mean err",
              "max err");
  for (const auto& cell : cells) {
    Stopwatch sw;
    CmPbe<PbeT> cm(grid, cell);
    for (const auto& r : ds.stream.records()) cm.Append(r.id, r.time);
    cm.Finalize();
    const double build = sw.Seconds();

    Rng qrng(cfg.seed ^ 0xf16);
    auto queries = SampleEventTimeQueries(ds.universe_size, 0,
                                          ds.stream.MaxTime(), cfg.queries,
                                          &qrng);
    auto stats = MeasurePointErrorMulti(cm, exact, queries, kSecondsPerDay);
    std::printf("  %14.2f %12.1f %12.2f %12.1f\n",
                cm.SizeBytes() / 1048576.0, build, stats.mean_abs,
                stats.max_abs);
  }
}

void RunDataset(const Dataset& ds, const BenchConfig& cfg) {
  Rule();
  std::printf("dataset %s: %zu records, K=%u\n", ds.name.c_str(),
              ds.stream.size(), ds.universe_size);
  ExactBurstStore exact(ds.universe_size);
  (void)exact.AppendStream(ds.stream);

  std::vector<Pbe1Options> p1;
  for (size_t eta : {15, 40, 90, 180, 375, 750}) {
    Pbe1Options o;
    o.buffer_points = 1500;
    o.budget_points = eta;
    p1.push_back(o);
  }
  SweepOne<Pbe1>("CM-PBE-1 (eta sweep)", ds, exact, p1, cfg);

  std::vector<Pbe2Options> p2;
  for (double gamma : {200.0, 60.0, 20.0, 8.0, 3.0, 1.0}) {
    Pbe2Options o;
    o.gamma = gamma;
    p2.push_back(o);
  }
  SweepOne<Pbe2>("CM-PBE-2 (gamma sweep)", ds, exact, p2, cfg);
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg = ParseArgs(argc, argv);
  Banner(cfg,
         "Figure 11: CM-PBE space vs accuracy on olympicrio and uspolitics",
         "error falls as space grows; uspolitics (more skew, ~2x ids) needs "
         "more space at equal error");
  RunDataset(MakeOlympicRio(cfg.Scenario()), cfg);
  RunDataset(MakeUsPolitics(cfg.Scenario()), cfg);
  return 0;
}
