// Baseline cost table (Sections II-B and VI setup): the naive exact
// store against the paper's structures — space, construction time,
// and per-query latency for all three query types.
//
// Paper numbers for context: storing F(t) exactly for a full dataset
// takes ~1 GB, while the sketches answer from KBs-MBs; a POINT query
// is O(log n) either way, but BURSTY EVENT drops from O(K) point
// queries to ~O(log K) with the dyadic index.

#include <cstdio>

#include "bench_common.h"
#include "core/burst_queries.h"
#include "core/dyadic_index.h"
#include "core/exact_store.h"
#include "eval/metrics.h"
#include "util/stopwatch.h"

using namespace bursthist;
using namespace bursthist::bench;

int main(int argc, char** argv) {
  BenchConfig cfg = ParseArgs(argc, argv);
  Banner(cfg,
         "Baseline vs sketches: space, build, and query latency",
         "sketches use a fraction of the baseline's space; bursty-event "
         "queries use ~O(log K) point queries instead of O(K)");

  Dataset ds = MakeOlympicRio(cfg.Scenario());
  std::printf("dataset %s: %zu records, K=%u\n\n", ds.name.c_str(),
              ds.stream.size(), ds.universe_size);
  const Timestamp tau = kSecondsPerDay;

  // --- Baseline -------------------------------------------------------
  Stopwatch sw;
  ExactBurstStore exact(ds.universe_size);
  (void)exact.AppendStream(ds.stream);
  const double exact_build = sw.Seconds();

  // --- Dyadic CM-PBE-1 -------------------------------------------------
  Pbe1Options cell;
  cell.buffer_points = 1500;
  cell.budget_points = 120;
  CmPbeOptions grid = CmPbeOptions::FromGuarantee(0.05, 0.2, cfg.seed);
  sw.Reset();
  DyadicBurstIndex<Pbe1> index(ds.universe_size, grid, cell);
  for (const auto& r : ds.stream.records()) index.Append(r.id, r.time);
  index.Finalize();
  const double index_build = sw.Seconds();

  // --- Point query latency --------------------------------------------
  Rng qrng(cfg.seed ^ 0x7ab);
  auto queries = SampleEventTimeQueries(ds.universe_size, 0,
                                        ds.stream.MaxTime(), 20000, &qrng);
  sw.Reset();
  double sink = 0.0;
  for (const auto& [e, t] : queries) {
    sink += static_cast<double>(exact.BurstinessAt(e, t, tau));
  }
  const double exact_point_us = sw.Micros() / queries.size();
  sw.Reset();
  for (const auto& [e, t] : queries) {
    sink += index.EstimateBurstiness(e, t, tau);
  }
  const double index_point_us = sw.Micros() / queries.size();

  // --- Bursty-time latency ---------------------------------------------
  sw.Reset();
  size_t iv = 0;
  for (EventId e = 0; e < 20; ++e) iv += exact.BurstyTimes(e, 50.0, tau).size();
  const double exact_bt_ms = sw.Millis() / 20;

  // --- Bursty-event latency ---------------------------------------------
  Rng trng(cfg.seed ^ 0x7ac);
  auto times = SampleQueryTimes(tau, ds.stream.MaxTime(), 50, &trng);
  const double theta = 400.0 * cfg.scale / 0.02;
  sw.Reset();
  size_t exact_found = 0;
  for (Timestamp t : times) exact_found += exact.BurstyEvents(t, theta, tau).size();
  const double exact_be_ms = sw.Millis() / times.size();
  sw.Reset();
  size_t index_found = 0, pq = 0;
  for (Timestamp t : times) {
    index_found += index.BurstyEvents(t, theta, tau).size();
    pq += index.LastQueryPointQueries();
  }
  const double index_be_ms = sw.Millis() / times.size();

  std::printf("%-22s %12s %10s %12s %14s\n", "structure", "space MB",
              "build s", "point us", "bursty-ev ms");
  std::printf("%-22s %12.2f %10.2f %12.3f %14.3f\n", "exact baseline",
              exact.SizeBytes() / 1048576.0, exact_build, exact_point_us,
              exact_be_ms);
  std::printf("%-22s %12.2f %10.2f %12.3f %14.3f\n", "dyadic CM-PBE-1",
              index.SizeBytes() / 1048576.0, index_build, index_point_us,
              index_be_ms);
  Rule();
  std::printf("bursty-event work: baseline scans K=%u events/query; index "
              "used %.1f point queries/query\n",
              ds.universe_size, static_cast<double>(pq) / times.size());
  std::printf("bursty-time (exact, 20 events): %.3f ms/query, %zu intervals "
              "total\n",
              exact_bt_ms, iv);
  std::printf("(found %zu vs %zu bursty ids across the %zu query times; "
              "sink=%.1f)\n",
              index_found, exact_found, times.size(), sink);
  return 0;
}
