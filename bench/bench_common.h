// Shared plumbing for the figure/table reproduction benches.
//
// Every bench binary prints a self-describing table on stdout and
// accepts:
//   --scale=small|medium|paper   dataset volume (default small so the
//                                full suite runs in minutes; `paper`
//                                regenerates the published Ns)
//   --seed=<u64>                 generator seed (default 42)
//   --metrics[=path]             after the tables, dump a metrics
//                                registry snapshot (Prometheus text)
//                                to stderr, or to `path` if given

#ifndef BURSTHIST_BENCH_BENCH_COMMON_H_
#define BURSTHIST_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>
#include <vector>

#include "gen/scenarios.h"
#include "stream/types.h"
#include "util/random.h"

namespace bursthist {
namespace bench {

/// Parsed command line for a bench binary.
struct BenchConfig {
  /// Multiplier applied to the paper's dataset volumes.
  double scale = 0.02;
  std::string scale_name = "small";
  uint64_t seed = 42;
  /// Random point queries per error measurement (paper: 100).
  size_t queries = 100;
  /// --metrics[=path]: emit a registry snapshot after the run.
  bool emit_metrics = false;
  std::string metrics_path;  ///< Empty means stderr.

  ScenarioConfig Scenario() const {
    ScenarioConfig cfg;
    cfg.seed = seed;
    cfg.scale = scale;
    return cfg;
  }
};

/// Parses --scale / --seed; exits with usage on unknown flags.
BenchConfig ParseArgs(int argc, char** argv);

/// Prints the standard bench banner.
void Banner(const BenchConfig& cfg, const char* what, const char* expect);

/// Prints a horizontal rule.
void Rule();

/// If --metrics was given, writes a Prometheus-text snapshot of the
/// global registry (full declared set, zeros included) to the flag's
/// path or stderr. No-op otherwise, and near-empty under
/// BURSTHIST_NO_METRICS.
void MaybeEmitMetrics(const BenchConfig& cfg);

/// Random (event, time) query pairs.
std::vector<std::pair<EventId, Timestamp>> SampleEventTimeQueries(
    EventId universe, Timestamp t_begin, Timestamp t_end, size_t count,
    Rng* rng);

}  // namespace bench
}  // namespace bursthist

#endif  // BURSTHIST_BENCH_BENCH_COMMON_H_
