// Ablation — the value of Algorithm 1's optimal dynamic program:
// optimal staircase selection vs uniform subsampling at the same
// budget, on the paper's single-event streams.
//
// Same representation, same no-overestimate guarantee; the only
// difference is where the kept corner points go. The gap is the
// optimization's payoff, and it widens where the curve's activity is
// uneven (uniform wastes points on flat stretches).

#include <cstdio>

#include "bench_common.h"
#include "pla/optimal_staircase.h"
#include "pla/staircase_model.h"
#include "pla/uniform_staircase.h"
#include "stream/frequency_curve.h"

using namespace bursthist;
using namespace bursthist::bench;

namespace {

void Sweep(const char* name, const SingleEventStream& stream) {
  FrequencyCurve curve(stream);
  // Compress buffer by buffer exactly as PBE-1 would.
  constexpr size_t kBuffer = 1500;
  std::printf("\n%s (%zu mentions, %zu corner points)\n", name, stream.size(),
              curve.size());
  std::printf("%8s %18s %18s %10s\n", "eta", "optimal area err",
              "uniform area err", "ratio");
  for (size_t eta : {30, 60, 120, 250, 500}) {
    double opt_err = 0.0, uni_err = 0.0;
    const auto& pts = curve.points();
    for (size_t begin = 0; begin < pts.size(); begin += kBuffer) {
      const size_t end = std::min(begin + kBuffer, pts.size());
      std::vector<CurvePoint> buffer(pts.begin() + begin, pts.begin() + end);
      const size_t budget =
          std::max<size_t>(2, eta * buffer.size() / kBuffer);
      opt_err += OptimalStaircase(buffer, budget).error;
      uni_err += UniformStaircase(buffer, budget).error;
    }
    std::printf("%8zu %18.0f %18.0f %10.2fx\n", eta, opt_err, uni_err,
                opt_err > 0 ? uni_err / opt_err : 0.0);
  }
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg = ParseArgs(argc, argv);
  Banner(cfg,
         "Ablation: optimal staircase DP vs uniform subsampling at equal "
         "budget",
         "the DP's area error should be a fraction of uniform's");
  SingleEventStream soccer = MakeSoccer(cfg.Scenario());
  SingleEventStream swimming = MakeSwimming(cfg.Scenario());
  Sweep("soccer", soccer);
  Sweep("swimming", swimming);
  return 0;
}
