// Micro benchmarks (google-benchmark): ingestion throughput and query
// latency of the individual structures. Run with --benchmark_filter=
// to narrow; plain invocation runs everything briefly.
//
// Special mode: `micro_throughput --bench_ingest_json=PATH` skips the
// google-benchmark harness and instead runs the batched-ingest A/B
// measurement (per-event Append vs AppendBatch at each batch size),
// writing machine-readable results to PATH. That file is what
// tools/check_bench_regression.py gates CI on — see
// bench/BENCH_ingest.json for the committed baseline.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "core/burst_engine.h"
#include "core/cm_pbe.h"
#include "core/dyadic_index.h"
#include "core/exact_store.h"
#include "core/parallel_ingest.h"
#include "core/pbe1.h"
#include "core/pbe2.h"
#include "gen/scenarios.h"
#include "util/random.h"

namespace bursthist {
namespace {

std::vector<Timestamp> MakeTimes(size_t n) {
  Rng rng(99);
  std::vector<Timestamp> times;
  times.reserve(n);
  Timestamp t = 0;
  for (size_t i = 0; i < n; ++i) {
    t += static_cast<Timestamp>(rng.NextBelow(4));
    times.push_back(t);
  }
  return times;
}

const std::vector<Timestamp>& SharedTimes() {
  static const std::vector<Timestamp>* times =
      new std::vector<Timestamp>(MakeTimes(200000));
  return *times;
}

const Dataset& SharedMix() {
  static const Dataset* ds = [] {
    ScenarioConfig cfg;
    cfg.scale = 0.004;  // ~20k records
    return new Dataset(MakeOlympicRio(cfg));
  }();
  return *ds;
}

// The bursty-ingest workload the batch-vs-per-event gate is measured
// on: events arrive in duplicate runs (the paper's motivating shape —
// a burst is many occurrences of one event in a tight window), so the
// batch path's run-coalescing has real work to do. Lossless cells
// (budget == buffer) keep the measurement on the ingest fan-out
// itself rather than on the staircase compression DP, which costs the
// same in both paths and would only dilute the ratio.
constexpr EventId kBurstyUniverse = 864;

const std::vector<WeightedRecord>& SharedBursty() {
  static const std::vector<WeightedRecord>* recs = [] {
    Rng rng(17);
    auto* w = new std::vector<WeightedRecord>();
    w->reserve(210000);
    Timestamp t = 0;
    while (w->size() < 200000) {
      const EventId e = static_cast<EventId>(rng.NextBelow(kBurstyUniverse));
      const uint64_t burst = 1 + rng.NextBelow(24);
      for (uint64_t i = 0; i < burst; ++i) {
        w->push_back(WeightedRecord{e, t, 1});
      }
      t += static_cast<Timestamp>(rng.NextBelow(3));
    }
    return w;
  }();
  return *recs;
}

BurstEngineOptions<Pbe1> BurstyOptions() {
  BurstEngineOptions<Pbe1> opt;
  opt.universe_size = kBurstyUniverse;
  opt.cell.buffer_points = 1500;
  opt.cell.budget_points = 1500;  // lossless
  return opt;
}

void BM_Pbe1Append(benchmark::State& state) {
  const auto& times = SharedTimes();
  Pbe1Options opt;
  opt.buffer_points = 1500;
  opt.budget_points = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    Pbe1 pbe(opt);
    for (Timestamp t : times) pbe.Append(t);
    pbe.Finalize();
    benchmark::DoNotOptimize(pbe.SizeBytes());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(times.size()));
}
BENCHMARK(BM_Pbe1Append)->Arg(60)->Arg(250);

void BM_Pbe2Append(benchmark::State& state) {
  const auto& times = SharedTimes();
  Pbe2Options opt;
  opt.gamma = static_cast<double>(state.range(0));
  for (auto _ : state) {
    Pbe2 pbe(opt);
    for (Timestamp t : times) pbe.Append(t);
    pbe.Finalize();
    benchmark::DoNotOptimize(pbe.SizeBytes());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(times.size()));
}
BENCHMARK(BM_Pbe2Append)->Arg(2)->Arg(32);

template <typename PbeT>
PbeT BuildSingle(const std::vector<Timestamp>& times) {
  typename PbeT::Options opt;
  PbeT pbe(opt);
  for (Timestamp t : times) pbe.Append(t);
  pbe.Finalize();
  return pbe;
}

void BM_Pbe1PointQuery(benchmark::State& state) {
  const auto& times = SharedTimes();
  Pbe1 pbe = BuildSingle<Pbe1>(times);
  Rng rng(5);
  const Timestamp last = times.back();
  for (auto _ : state) {
    const Timestamp t =
        static_cast<Timestamp>(rng.NextBelow(static_cast<uint64_t>(last)));
    benchmark::DoNotOptimize(pbe.EstimateBurstiness(t, 3600));
  }
}
BENCHMARK(BM_Pbe1PointQuery);

void BM_Pbe2PointQuery(benchmark::State& state) {
  const auto& times = SharedTimes();
  Pbe2 pbe = BuildSingle<Pbe2>(times);
  Rng rng(5);
  const Timestamp last = times.back();
  for (auto _ : state) {
    const Timestamp t =
        static_cast<Timestamp>(rng.NextBelow(static_cast<uint64_t>(last)));
    benchmark::DoNotOptimize(pbe.EstimateBurstiness(t, 3600));
  }
}
BENCHMARK(BM_Pbe2PointQuery);

void BM_ExactPointQuery(benchmark::State& state) {
  SingleEventStream stream(SharedTimes());
  Rng rng(5);
  const Timestamp last = stream.times().back();
  for (auto _ : state) {
    const Timestamp t =
        static_cast<Timestamp>(rng.NextBelow(static_cast<uint64_t>(last)));
    benchmark::DoNotOptimize(stream.BurstinessAt(t, 3600));
  }
}
BENCHMARK(BM_ExactPointQuery);

void BM_CmPbeAppend(benchmark::State& state) {
  const auto& ds = SharedMix();
  Pbe1Options cell;
  cell.buffer_points = 1500;
  cell.budget_points = 120;
  CmPbeOptions grid = CmPbeOptions::FromGuarantee(0.05, 0.2);
  for (auto _ : state) {
    CmPbe<Pbe1> cm(grid, cell);
    for (const auto& r : ds.stream.records()) cm.Append(r.id, r.time);
    cm.Finalize();
    benchmark::DoNotOptimize(cm.SizeBytes());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(ds.stream.size()));
}
BENCHMARK(BM_CmPbeAppend);

// The full BurstEngine::Append path — reorder buffer, dyadic fan-out,
// and the observability counters/gauges. This is the benchmark the
// metrics layer's <=2% overhead budget is measured on: compare a
// default build against -DBURSTHIST_NO_METRICS=ON.
void BM_EngineAppend(benchmark::State& state) {
  const auto& ds = SharedMix();
  BurstEngineOptions<Pbe1> opt;
  opt.universe_size = ds.universe_size;
  opt.cell.buffer_points = 1500;
  opt.cell.budget_points = 120;
  for (auto _ : state) {
    BurstEngine<Pbe1> engine(opt);
    for (const auto& r : ds.stream.records()) {
      benchmark::DoNotOptimize(engine.Append(r.id, r.time).ok());
    }
    engine.Finalize();
    benchmark::DoNotOptimize(engine.SizeBytes());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(ds.stream.size()));
}
BENCHMARK(BM_EngineAppend);

// Per-event Append on the bursty workload: the denominator of the
// batch-speedup ratio the perf regression tier pins.
void BM_EngineAppendBursty(benchmark::State& state) {
  const auto& records = SharedBursty();
  const auto opt = BurstyOptions();
  for (auto _ : state) {
    BurstEngine<Pbe1> engine(opt);
    for (const auto& r : records) {
      benchmark::DoNotOptimize(engine.Append(r.id, r.time, r.count).ok());
    }
    engine.Finalize();
    benchmark::DoNotOptimize(engine.SizeBytes());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(records.size()));
}
BENCHMARK(BM_EngineAppendBursty);

// The batched hot path the ingest server drives: the bursty workload
// fed through AppendBatch in Arg-sized spans. The events/s ratio
// against BM_EngineAppendBursty is the number the perf regression
// tier pins (>= 3x at batch >= 64); --bench_ingest_json runs the same
// comparison and writes it to the gated JSON.
void BM_EngineAppendBatch(benchmark::State& state) {
  const auto& records = SharedBursty();
  const size_t batch = static_cast<size_t>(state.range(0));
  const auto opt = BurstyOptions();
  const std::span<const WeightedRecord> all(records);
  for (auto _ : state) {
    BurstEngine<Pbe1> engine(opt);
    for (size_t begin = 0; begin < all.size(); begin += batch) {
      benchmark::DoNotOptimize(
          engine
              .AppendBatch(all.subspan(begin,
                                       std::min(batch, all.size() - begin)))
              .ok());
    }
    engine.Finalize();
    benchmark::DoNotOptimize(engine.SizeBytes());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(records.size()));
}
BENCHMARK(BM_EngineAppendBatch)->Arg(1)->Arg(7)->Arg(64)->Arg(4096);

void BM_CmPbeSegmentParallelBuild(benchmark::State& state) {
  const auto& ds = SharedMix();
  Pbe1Options cell;
  cell.buffer_points = 1500;
  cell.budget_points = 120;
  CmPbeOptions grid = CmPbeOptions::FromGuarantee(0.05, 0.2);
  const size_t threads = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto cm = BuildCmPbeSegmentParallel<Pbe1>(ds.stream, grid, cell, threads);
    benchmark::DoNotOptimize(cm.SizeBytes());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(ds.stream.size()));
}
BENCHMARK(BM_CmPbeSegmentParallelBuild)->Arg(1)->Arg(4)->Arg(8);

void BM_DyadicSegmentParallelBuild(benchmark::State& state) {
  const auto& ds = SharedMix();
  Pbe1Options cell;
  cell.buffer_points = 1500;
  cell.budget_points = 120;
  CmPbeOptions grid = CmPbeOptions::FromGuarantee(0.05, 0.2);
  const size_t threads = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto index = BuildDyadicSegmentParallel<Pbe1>(
        ds.stream, ds.universe_size, grid, cell, threads);
    benchmark::DoNotOptimize(index.SizeBytes());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(ds.stream.size()));
}
BENCHMARK(BM_DyadicSegmentParallelBuild)->Arg(1)->Arg(4)->Arg(8);

void BM_Pbe1Serialize(benchmark::State& state) {
  const auto& times = SharedTimes();
  Pbe1 pbe = BuildSingle<Pbe1>(times);
  for (auto _ : state) {
    BinaryWriter w;
    pbe.Serialize(&w);
    benchmark::DoNotOptimize(w.bytes().size());
  }
}
BENCHMARK(BM_Pbe1Serialize);

void BM_Pbe1Deserialize(benchmark::State& state) {
  const auto& times = SharedTimes();
  Pbe1 pbe = BuildSingle<Pbe1>(times);
  BinaryWriter w;
  pbe.Serialize(&w);
  for (auto _ : state) {
    Pbe1 back;
    BinaryReader r(w.bytes());
    benchmark::DoNotOptimize(back.Deserialize(&r).ok());
  }
}
BENCHMARK(BM_Pbe1Deserialize);

void BM_DyadicBurstyEventQuery(benchmark::State& state) {
  const auto& ds = SharedMix();
  Pbe1Options cell;
  cell.buffer_points = 1500;
  cell.budget_points = 120;
  CmPbeOptions grid = CmPbeOptions::FromGuarantee(0.05, 0.2);
  static DyadicBurstIndex<Pbe1>* index = [&] {
    auto* idx = new DyadicBurstIndex<Pbe1>(ds.universe_size, grid, cell);
    for (const auto& r : ds.stream.records()) idx->Append(r.id, r.time);
    idx->Finalize();
    return idx;
  }();
  Rng rng(7);
  const Timestamp last = ds.stream.MaxTime();
  for (auto _ : state) {
    const Timestamp t =
        static_cast<Timestamp>(rng.NextBelow(static_cast<uint64_t>(last)));
    benchmark::DoNotOptimize(index->BurstyEvents(t, 100.0, kSecondsPerDay));
  }
}
BENCHMARK(BM_DyadicBurstyEventQuery);

// ---------------------------------------------------------------------------
// --bench_ingest_json mode: the perf-regression measurement. Wall
// clocks differ across machines, so the gated quantity is the RATIO of
// batched to per-event events/s on the same run — stable enough to
// compare against a committed baseline.
// ---------------------------------------------------------------------------

// Best-of-N full-workload passes: the minimum wall time is the least
// noisy throughput estimator for a short, allocation-light loop.
template <typename Fn>
double MeasureEventsPerSec(size_t events, Fn&& pass) {
  using Clock = std::chrono::steady_clock;
  pass();  // warm-up: page in the dataset, size the scratch vectors
  double best_seconds = 1e30;
  double total = 0.0;
  int iters = 0;
  while (total < 0.4 || iters < 5) {
    const auto start = Clock::now();
    pass();
    const double s = std::chrono::duration<double>(Clock::now() - start)
                         .count();
    best_seconds = std::min(best_seconds, s);
    total += s;
    ++iters;
  }
  return static_cast<double>(events) / best_seconds;
}

// Measures one workload (per-event plus every batch size) and appends
// its JSON object to `out`.
void MeasureWorkload(const char* name,
                     const std::vector<WeightedRecord>& records,
                     const BurstEngineOptions<Pbe1>& opt,
                     std::ofstream& out) {
  const double per_event = MeasureEventsPerSec(records.size(), [&] {
    BurstEngine<Pbe1> engine(opt);
    for (const auto& r : records) {
      benchmark::DoNotOptimize(engine.Append(r.id, r.time, r.count).ok());
    }
    engine.Finalize();
  });

  const std::span<const WeightedRecord> all(records);
  const size_t batch_sizes[] = {1, 7, 64, 4096};
  out << "    \"" << name << "\": {\n      \"events\": " << records.size()
      << ",\n      \"per_event_events_per_sec\": " << per_event
      << ",\n      \"batch\": {";
  bool first = true;
  for (size_t batch : batch_sizes) {
    const double eps = MeasureEventsPerSec(records.size(), [&] {
      BurstEngine<Pbe1> engine(opt);
      for (size_t begin = 0; begin < all.size(); begin += batch) {
        benchmark::DoNotOptimize(
            engine
                .AppendBatch(
                    all.subspan(begin, std::min(batch, all.size() - begin)))
                .ok());
      }
      engine.Finalize();
    });
    const double speedup = eps / per_event;
    out << (first ? "" : ",") << "\n        \"" << batch
        << "\": { \"events_per_sec\": " << eps << ", \"speedup\": " << speedup
        << " }";
    first = false;
    std::fprintf(stderr, "%s batch=%zu  %.3g events/s  speedup %.2fx\n", name,
                 batch, eps, speedup);
  }
  out << "\n      }\n    }";
  std::fprintf(stderr, "%s per-event %.3g events/s\n", name, per_event);
}

int RunIngestBench(const std::string& path) {
  // Secondary workload: the Olympic mix with lossy cells. Here the
  // staircase-compression DP dominates ingest cost in BOTH paths, so
  // the speedup hovers near 1x by construction — it is recorded to
  // catch regressions (the ratio must not drop), not gated on the 3x
  // floor. The floor applies to the bursty workload, where batching
  // has headroom to win.
  const auto& ds = SharedMix();
  std::vector<WeightedRecord> mix;
  mix.reserve(ds.stream.records().size());
  for (const auto& r : ds.stream.records()) {
    mix.push_back(WeightedRecord{r.id, r.time, 1});
  }
  BurstEngineOptions<Pbe1> mix_opt;
  mix_opt.universe_size = ds.universe_size;
  mix_opt.cell.buffer_points = 1500;
  mix_opt.cell.budget_points = 120;

  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  out << "{\n  \"workloads\": {\n";
  MeasureWorkload("bursty", SharedBursty(), BurstyOptions(), out);
  out << ",\n";
  MeasureWorkload("olympic_rio_mix", mix, mix_opt, out);
  out << "\n  }\n}\n";
  std::fprintf(stderr, "-> %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace bursthist

int main(int argc, char** argv) {
  constexpr const char kJsonFlag[] = "--bench_ingest_json=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], kJsonFlag, sizeof kJsonFlag - 1) == 0) {
      return bursthist::RunIngestBench(argv[i] + sizeof kJsonFlag - 1);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
