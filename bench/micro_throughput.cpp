// Micro benchmarks (google-benchmark): ingestion throughput and query
// latency of the individual structures. Run with --benchmark_filter=
// to narrow; plain invocation runs everything briefly.

#include <benchmark/benchmark.h>

#include <vector>

#include "core/burst_engine.h"
#include "core/cm_pbe.h"
#include "core/dyadic_index.h"
#include "core/exact_store.h"
#include "core/parallel_ingest.h"
#include "core/pbe1.h"
#include "core/pbe2.h"
#include "gen/scenarios.h"
#include "util/random.h"

namespace bursthist {
namespace {

std::vector<Timestamp> MakeTimes(size_t n) {
  Rng rng(99);
  std::vector<Timestamp> times;
  times.reserve(n);
  Timestamp t = 0;
  for (size_t i = 0; i < n; ++i) {
    t += static_cast<Timestamp>(rng.NextBelow(4));
    times.push_back(t);
  }
  return times;
}

const std::vector<Timestamp>& SharedTimes() {
  static const std::vector<Timestamp>* times =
      new std::vector<Timestamp>(MakeTimes(200000));
  return *times;
}

const Dataset& SharedMix() {
  static const Dataset* ds = [] {
    ScenarioConfig cfg;
    cfg.scale = 0.004;  // ~20k records
    return new Dataset(MakeOlympicRio(cfg));
  }();
  return *ds;
}

void BM_Pbe1Append(benchmark::State& state) {
  const auto& times = SharedTimes();
  Pbe1Options opt;
  opt.buffer_points = 1500;
  opt.budget_points = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    Pbe1 pbe(opt);
    for (Timestamp t : times) pbe.Append(t);
    pbe.Finalize();
    benchmark::DoNotOptimize(pbe.SizeBytes());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(times.size()));
}
BENCHMARK(BM_Pbe1Append)->Arg(60)->Arg(250);

void BM_Pbe2Append(benchmark::State& state) {
  const auto& times = SharedTimes();
  Pbe2Options opt;
  opt.gamma = static_cast<double>(state.range(0));
  for (auto _ : state) {
    Pbe2 pbe(opt);
    for (Timestamp t : times) pbe.Append(t);
    pbe.Finalize();
    benchmark::DoNotOptimize(pbe.SizeBytes());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(times.size()));
}
BENCHMARK(BM_Pbe2Append)->Arg(2)->Arg(32);

template <typename PbeT>
PbeT BuildSingle(const std::vector<Timestamp>& times) {
  typename PbeT::Options opt;
  PbeT pbe(opt);
  for (Timestamp t : times) pbe.Append(t);
  pbe.Finalize();
  return pbe;
}

void BM_Pbe1PointQuery(benchmark::State& state) {
  const auto& times = SharedTimes();
  Pbe1 pbe = BuildSingle<Pbe1>(times);
  Rng rng(5);
  const Timestamp last = times.back();
  for (auto _ : state) {
    const Timestamp t =
        static_cast<Timestamp>(rng.NextBelow(static_cast<uint64_t>(last)));
    benchmark::DoNotOptimize(pbe.EstimateBurstiness(t, 3600));
  }
}
BENCHMARK(BM_Pbe1PointQuery);

void BM_Pbe2PointQuery(benchmark::State& state) {
  const auto& times = SharedTimes();
  Pbe2 pbe = BuildSingle<Pbe2>(times);
  Rng rng(5);
  const Timestamp last = times.back();
  for (auto _ : state) {
    const Timestamp t =
        static_cast<Timestamp>(rng.NextBelow(static_cast<uint64_t>(last)));
    benchmark::DoNotOptimize(pbe.EstimateBurstiness(t, 3600));
  }
}
BENCHMARK(BM_Pbe2PointQuery);

void BM_ExactPointQuery(benchmark::State& state) {
  SingleEventStream stream(SharedTimes());
  Rng rng(5);
  const Timestamp last = stream.times().back();
  for (auto _ : state) {
    const Timestamp t =
        static_cast<Timestamp>(rng.NextBelow(static_cast<uint64_t>(last)));
    benchmark::DoNotOptimize(stream.BurstinessAt(t, 3600));
  }
}
BENCHMARK(BM_ExactPointQuery);

void BM_CmPbeAppend(benchmark::State& state) {
  const auto& ds = SharedMix();
  Pbe1Options cell;
  cell.buffer_points = 1500;
  cell.budget_points = 120;
  CmPbeOptions grid = CmPbeOptions::FromGuarantee(0.05, 0.2);
  for (auto _ : state) {
    CmPbe<Pbe1> cm(grid, cell);
    for (const auto& r : ds.stream.records()) cm.Append(r.id, r.time);
    cm.Finalize();
    benchmark::DoNotOptimize(cm.SizeBytes());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(ds.stream.size()));
}
BENCHMARK(BM_CmPbeAppend);

// The full BurstEngine::Append path — reorder buffer, dyadic fan-out,
// and the observability counters/gauges. This is the benchmark the
// metrics layer's <=2% overhead budget is measured on: compare a
// default build against -DBURSTHIST_NO_METRICS=ON.
void BM_EngineAppend(benchmark::State& state) {
  const auto& ds = SharedMix();
  BurstEngineOptions<Pbe1> opt;
  opt.universe_size = ds.universe_size;
  opt.cell.buffer_points = 1500;
  opt.cell.budget_points = 120;
  for (auto _ : state) {
    BurstEngine<Pbe1> engine(opt);
    for (const auto& r : ds.stream.records()) {
      benchmark::DoNotOptimize(engine.Append(r.id, r.time).ok());
    }
    engine.Finalize();
    benchmark::DoNotOptimize(engine.SizeBytes());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(ds.stream.size()));
}
BENCHMARK(BM_EngineAppend);

void BM_CmPbeSegmentParallelBuild(benchmark::State& state) {
  const auto& ds = SharedMix();
  Pbe1Options cell;
  cell.buffer_points = 1500;
  cell.budget_points = 120;
  CmPbeOptions grid = CmPbeOptions::FromGuarantee(0.05, 0.2);
  const size_t threads = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto cm = BuildCmPbeSegmentParallel<Pbe1>(ds.stream, grid, cell, threads);
    benchmark::DoNotOptimize(cm.SizeBytes());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(ds.stream.size()));
}
BENCHMARK(BM_CmPbeSegmentParallelBuild)->Arg(1)->Arg(4)->Arg(8);

void BM_DyadicSegmentParallelBuild(benchmark::State& state) {
  const auto& ds = SharedMix();
  Pbe1Options cell;
  cell.buffer_points = 1500;
  cell.budget_points = 120;
  CmPbeOptions grid = CmPbeOptions::FromGuarantee(0.05, 0.2);
  const size_t threads = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto index = BuildDyadicSegmentParallel<Pbe1>(
        ds.stream, ds.universe_size, grid, cell, threads);
    benchmark::DoNotOptimize(index.SizeBytes());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(ds.stream.size()));
}
BENCHMARK(BM_DyadicSegmentParallelBuild)->Arg(1)->Arg(4)->Arg(8);

void BM_Pbe1Serialize(benchmark::State& state) {
  const auto& times = SharedTimes();
  Pbe1 pbe = BuildSingle<Pbe1>(times);
  for (auto _ : state) {
    BinaryWriter w;
    pbe.Serialize(&w);
    benchmark::DoNotOptimize(w.bytes().size());
  }
}
BENCHMARK(BM_Pbe1Serialize);

void BM_Pbe1Deserialize(benchmark::State& state) {
  const auto& times = SharedTimes();
  Pbe1 pbe = BuildSingle<Pbe1>(times);
  BinaryWriter w;
  pbe.Serialize(&w);
  for (auto _ : state) {
    Pbe1 back;
    BinaryReader r(w.bytes());
    benchmark::DoNotOptimize(back.Deserialize(&r).ok());
  }
}
BENCHMARK(BM_Pbe1Deserialize);

void BM_DyadicBurstyEventQuery(benchmark::State& state) {
  const auto& ds = SharedMix();
  Pbe1Options cell;
  cell.buffer_points = 1500;
  cell.budget_points = 120;
  CmPbeOptions grid = CmPbeOptions::FromGuarantee(0.05, 0.2);
  static DyadicBurstIndex<Pbe1>* index = [&] {
    auto* idx = new DyadicBurstIndex<Pbe1>(ds.universe_size, grid, cell);
    for (const auto& r : ds.stream.records()) idx->Append(r.id, r.time);
    idx->Finalize();
    return idx;
  }();
  Rng rng(7);
  const Timestamp last = ds.stream.MaxTime();
  for (auto _ : state) {
    const Timestamp t =
        static_cast<Timestamp>(rng.NextBelow(static_cast<uint64_t>(last)));
    benchmark::DoNotOptimize(index->BurstyEvents(t, 100.0, kSecondsPerDay));
  }
}
BENCHMARK(BM_DyadicBurstyEventQuery);

}  // namespace
}  // namespace bursthist

BENCHMARK_MAIN();
