// Figure 10 — single event stream comparison of PBE-1 and PBE-2:
//   (a) error vs space: sweep each structure's own knob (eta for
//       PBE-1, gamma for PBE-2) and report (space, error) series —
//       PBE-1 should enjoy better accuracy at equal space;
//   (b) error vs n (the exact curve's corner count) at a fixed byte
//       budget: longer histories squeezed into the same bytes err
//       more, with jumps where the incoming rate changes regime.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/pbe1.h"
#include "core/pbe2.h"
#include "eval/metrics.h"
#include "stream/frequency_curve.h"

using namespace bursthist;
using namespace bursthist::bench;

namespace {

Pbe1 BuildP1(const SingleEventStream& s, size_t eta, size_t buffer = 1500) {
  Pbe1Options o;
  o.buffer_points = buffer;
  o.budget_points = eta;
  Pbe1 p(o);
  for (Timestamp t : s.times()) p.Append(t);
  p.Finalize();
  return p;
}

Pbe2 BuildP2(const SingleEventStream& s, double gamma) {
  Pbe2Options o;
  o.gamma = gamma;
  Pbe2 p(o);
  for (Timestamp t : s.times()) p.Append(t);
  p.Finalize();
  return p;
}

double MeanError(const auto& model, const SingleEventStream& s,
                 size_t queries, uint64_t seed) {
  Rng qrng(seed);
  auto times = SampleQueryTimes(0, s.times().back(), queries, &qrng);
  return MeasurePointError(model, s, times, kSecondsPerDay).mean_abs;
}

// Finds the gamma whose PBE-2 lands closest to target_bytes.
Pbe2 BuildP2NearSize(const SingleEventStream& s, size_t target_bytes) {
  double best_gamma = 1.0;
  size_t best_diff = ~size_t{0};
  for (double gamma = 0.5; gamma <= 4096.0; gamma *= 1.6) {
    Pbe2 p = BuildP2(s, gamma);
    const size_t diff = p.SizeBytes() > target_bytes
                            ? p.SizeBytes() - target_bytes
                            : target_bytes - p.SizeBytes();
    if (diff < best_diff) {
      best_diff = diff;
      best_gamma = gamma;
    }
  }
  return BuildP2(s, best_gamma);
}

void PartA(const char* name, const SingleEventStream& s,
           const BenchConfig& cfg) {
  std::printf("\n(a) %s: error vs space\n", name);
  std::printf("    %-8s %12s %12s\n", "knob", "space KB", "mean err");
  for (size_t eta : {10, 25, 60, 120, 250, 500}) {
    Pbe1 p = BuildP1(s, eta);
    std::printf("    PBE-1 eta=%-5zu %8.1f %12.2f\n", eta,
                p.SizeBytes() / 1024.0,
                MeanError(p, s, cfg.queries, cfg.seed ^ eta));
  }
  for (double gamma : {200.0, 80.0, 30.0, 10.0, 4.0, 1.0}) {
    Pbe2 p = BuildP2(s, gamma);
    std::printf("    PBE-2 g=%-7.0f %8.1f %12.2f\n", gamma,
                p.SizeBytes() / 1024.0,
                MeanError(p, s, cfg.queries,
                          cfg.seed ^ static_cast<uint64_t>(gamma)));
  }
}

void PartB(const char* name, const SingleEventStream& s,
           const BenchConfig& cfg) {
  // Vary n by taking stream prefixes; squeeze each prefix into the
  // same byte budget.
  const size_t budget_bytes = static_cast<size_t>(10 * 1024 * cfg.scale / 0.02);
  std::printf("\n(b) %s: error vs n at fixed %.1f KB\n", name,
              budget_bytes / 1024.0);
  std::printf("    %10s %10s %14s %14s\n", "prefix n", "", "PBE-1 err",
              "PBE-2 err");
  FrequencyCurve full(s);
  const size_t total_n = full.size();
  for (double frac : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    const size_t want_n = static_cast<size_t>(frac * total_n);
    // Prefix of the stream containing want_n corner points.
    size_t cut = 0;
    {
      size_t corners = 0;
      const auto& times = s.times();
      for (size_t i = 0; i < times.size(); ++i) {
        if (i == 0 || times[i] != times[i - 1]) ++corners;
        if (corners > want_n) break;
        cut = i + 1;
      }
    }
    SingleEventStream prefix(std::vector<Timestamp>(
        s.times().begin(), s.times().begin() + cut));
    if (prefix.empty()) continue;

    // PBE-1: choose eta so total points * 16B ~ budget.
    const size_t buffers = (want_n + 1499) / 1500;
    const size_t eta = std::max<size_t>(
        2, budget_bytes / sizeof(CurvePoint) / std::max<size_t>(1, buffers));
    Pbe1 p1 = BuildP1(prefix, eta);
    Pbe2 p2 = BuildP2NearSize(prefix, budget_bytes);
    std::printf("    %10zu %10s %14.2f %14.2f   (sizes %.1f / %.1f KB)\n",
                want_n, "", MeanError(p1, prefix, cfg.queries, cfg.seed),
                MeanError(p2, prefix, cfg.queries, cfg.seed),
                p1.SizeBytes() / 1024.0, p2.SizeBytes() / 1024.0);
  }
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg = ParseArgs(argc, argv);
  Banner(cfg,
         "Figure 10: PBE-1 vs PBE-2 on single event streams",
         "(a) at equal space PBE-1 has lower error; (b) error grows with n "
         "at a fixed budget");
  SingleEventStream soccer = MakeSoccer(cfg.Scenario());
  SingleEventStream swimming = MakeSwimming(cfg.Scenario());
  PartA("soccer", soccer, cfg);
  PartA("swimming", swimming, cfg);
  PartB("soccer", soccer, cfg);
  PartB("swimming", swimming, cfg);
  return 0;
}
