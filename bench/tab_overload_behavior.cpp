// Overload-behavior table: what a tightening memory budget does to
// governed ingest — throughput, admission outcomes, shed activity, and
// the effective (reported) error bound.
//
// Expectation: a soft budget alone keeps accepting every record but
// widens the reported bound (accuracy shed for space, per the
// degradation ladder in DESIGN.md § Resource governance); adding a
// hard budget starts refusing appends with ResourceExhausted once
// shedding can no longer keep usage under it. Availability and honesty
// are the invariants — the process neither dies nor silently degrades.

#include <chrono>
#include <cstdio>

#include "bench_common.h"
#include "governor/governed_engine.h"
#include "governor/resource_governor.h"
#include "util/status.h"

using namespace bursthist;
using namespace bursthist::bench;

namespace {

struct RunResult {
  double seconds = 0.0;
  uint64_t accepted = 0;
  uint64_t refused = 0;
};

GovernedEngineOptions<Pbe2> BaseOptions(EventId universe) {
  GovernedEngineOptions<Pbe2> o;
  o.engine.universe_size = universe;
  o.audit_every = 64;
  return o;
}

RunResult Ingest(GovernedBurstEngine2* engine, const Dataset& ds) {
  RunResult r;
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& rec : ds.stream.records()) {
    Status st = engine->Append(rec.id, rec.time);
    if (st.ok()) {
      ++r.accepted;
    } else if (st.code() == StatusCode::kResourceExhausted) {
      ++r.refused;
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg = ParseArgs(argc, argv);
  Banner(cfg, "governed ingest under tightening memory budgets",
         "soft budgets widen the reported bound; hard budgets refuse");

  Dataset ds = MakeUsPolitics(cfg.Scenario());
  std::printf("us-politics: %zu records, universe %u\n\n", ds.stream.size(),
              ds.universe_size);

  // The ungoverned run fixes the budget scale (and the throughput
  // baseline) for the sweep.
  size_t base_bytes = 0;
  double base_rate = 0.0;
  {
    GovernedBurstEngine2 engine(BaseOptions(ds.universe_size));
    RunResult r = Ingest(&engine, ds);
    base_bytes = engine.engine().MemoryUsage();
    base_rate = r.seconds > 0 ? r.accepted / r.seconds : 0.0;
  }
  std::printf("ungoverned baseline: %.0f records/s, %.1f KB resident\n\n",
              base_rate, base_bytes / 1024.0);

  struct BudgetRow {
    const char* name;
    size_t soft, hard;
  };
  const BudgetRow rows[] = {
      {"soft 1/2", base_bytes / 2, 0},
      {"soft 1/4", base_bytes / 4, 0},
      {"soft 1/4, hard 1/2", base_bytes / 4, base_bytes / 2},
      {"soft 1/8, hard 1/4", base_bytes / 8, base_bytes / 4},
  };

  std::printf("%-20s %11s %9s %8s %6s %9s %11s  %s\n", "budget", "records/s",
              "accepted", "refused", "sheds", "KB", "eff bound", "level");
  Rule();
  for (const BudgetRow& row : rows) {
    GovernedEngineOptions<Pbe2> o = BaseOptions(ds.universe_size);
    o.budget.soft_bytes = row.soft;
    o.budget.hard_bytes = row.hard;
    GovernedBurstEngine2 engine(o);
    RunResult r = Ingest(&engine, ds);
    const EffectiveErrorBound bound = engine.effective_bound();
    std::printf(
        "%-20s %11.0f %9llu %8llu %6llu %9.1f %11.3g  %s\n", row.name,
        r.seconds > 0 ? r.accepted / r.seconds : 0.0,
        static_cast<unsigned long long>(r.accepted),
        static_cast<unsigned long long>(r.refused),
        static_cast<unsigned long long>(engine.governor().shed_rounds()),
        engine.engine().MemoryUsage() / 1024.0, bound.point_bound,
        DegradationLevelName(engine.governor().level()));
  }
  bursthist::bench::MaybeEmitMetrics(cfg);
  return 0;
}
