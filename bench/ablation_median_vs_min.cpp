// Ablation — CM-PBE row combination: the paper's MEDIAN estimator vs
// the classic Count-Min MIN (Section IV).
//
// The per-cell PBEs can only underestimate their merged streams while
// hash collisions only add mass, so the two biases pull in opposite
// directions. MIN keeps the full collision bias but none of the
// undershoot; MEDIAN trades some of each. The winner depends on which
// bias dominates: tight cell budgets (big undershoot) favor MIN less
// clearly than wide, accurate cells do. This table makes the regimes
// visible.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/cm_pbe.h"
#include "core/exact_store.h"
#include "eval/metrics.h"

using namespace bursthist;
using namespace bursthist::bench;

namespace {

double RunOne(const Dataset& ds, const ExactBurstStore& exact,
              CmEstimator estimator, size_t width, size_t eta,
              const BenchConfig& cfg) {
  CmPbeOptions grid;
  grid.depth = 5;
  grid.width = width;
  grid.seed = cfg.seed;
  grid.estimator = estimator;
  Pbe1Options cell;
  cell.buffer_points = 1500;
  cell.budget_points = eta;
  CmPbe<Pbe1> cm(grid, cell);
  for (const auto& r : ds.stream.records()) cm.Append(r.id, r.time);
  cm.Finalize();

  Rng qrng(cfg.seed ^ 0xab1a);
  auto queries = SampleEventTimeQueries(ds.universe_size, 0,
                                        ds.stream.MaxTime(), 200, &qrng);
  return MeasurePointErrorMulti(cm, exact, queries, kSecondsPerDay).mean_abs;
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg = ParseArgs(argc, argv);
  Banner(cfg,
         "Ablation: CM-PBE median vs min row combination",
         "median is the paper's choice; min wins only when cells are "
         "near-lossless (collision bias dominates)");

  Dataset ds = MakeOlympicRio(cfg.Scenario());
  ExactBurstStore exact(ds.universe_size);
  (void)exact.AppendStream(ds.stream);
  std::printf("dataset %s: %zu records, K=%u, depth=5\n\n", ds.name.c_str(),
              ds.stream.size(), ds.universe_size);

  std::printf("%8s %8s %14s %14s %10s\n", "width", "eta", "median err",
              "min err", "winner");
  for (size_t width : {16, 55, 256}) {
    for (size_t eta : {30, 120, 750}) {
      const double med =
          RunOne(ds, exact, CmEstimator::kMedian, width, eta, cfg);
      const double mn = RunOne(ds, exact, CmEstimator::kMin, width, eta, cfg);
      std::printf("%8zu %8zu %14.2f %14.2f %10s\n", width, eta, med, mn,
                  med <= mn ? "median" : "min");
    }
  }
  return 0;
}
