// Figure 8 — PBE-1 parameter study: sweep the per-buffer point budget
// eta and report (a) space and construction time, (b) mean point-query
// error, on the soccer and swimming single-event streams.
//
// Paper shape: size and construction time grow ~linearly with eta
// (total size < ~350 KB at eta=700); the approximation error collapses
// quickly — under ~10 once eta > ~120 — against burstiness values that
// exceed 25,000 at full scale.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/pbe1.h"
#include "eval/metrics.h"
#include "util/stopwatch.h"

using namespace bursthist;
using namespace bursthist::bench;

namespace {

struct Row {
  size_t eta;
  double space_kb;
  double build_s;
  double err_mean;
  double err_max;
};

Row RunOne(const SingleEventStream& stream, size_t eta, size_t buffer,
           size_t queries, uint64_t seed) {
  Pbe1Options opt;
  opt.buffer_points = buffer;
  opt.budget_points = eta;
  Stopwatch sw;
  Pbe1 pbe(opt);
  for (Timestamp t : stream.times()) pbe.Append(t);
  pbe.Finalize();
  const double build = sw.Seconds();

  const Timestamp tau = kSecondsPerDay;
  Rng qrng(seed);
  auto times = SampleQueryTimes(0, stream.times().back(), queries, &qrng);
  auto stats = MeasurePointError(pbe, stream, times, tau);
  return Row{eta, pbe.SizeBytes() / 1024.0, build, stats.mean_abs,
             stats.max_abs};
}

void Sweep(const char* name, const SingleEventStream& stream,
           const BenchConfig& cfg) {
  std::printf("\n%s (%zu mentions, peak daily burstiness for reference "
              "below)\n",
              name, stream.size());
  Burstiness peak = 0;
  for (Timestamp d = 1; d <= 31; ++d) {
    peak = std::max(peak,
                    stream.BurstinessAt(d * kSecondsPerDay, kSecondsPerDay));
  }
  std::printf("peak exact burstiness (daily grid): %lld\n",
              static_cast<long long>(peak));
  std::printf("%6s %12s %12s %12s %12s\n", "eta", "space KB", "build s",
              "mean err", "max err");
  for (size_t eta : {30, 60, 120, 250, 400, 700}) {
    Row r = RunOne(stream, eta, 1500, cfg.queries, cfg.seed ^ eta);
    std::printf("%6zu %12.1f %12.3f %12.2f %12.1f\n", r.eta, r.space_kb,
                r.build_s, r.err_mean, r.err_max);
  }
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg = ParseArgs(argc, argv);
  Banner(cfg,
         "Figure 8: PBE-1 eta sweep (n = 1500): space, construction time, "
         "point-query error",
         "space/time grow ~linearly with eta; error drops below ~10 for "
         "eta > ~120");
  SingleEventStream soccer = MakeSoccer(cfg.Scenario());
  SingleEventStream swimming = MakeSwimming(cfg.Scenario());
  Sweep("soccer", soccer, cfg);
  Sweep("swimming", swimming, cfg);
  return 0;
}
