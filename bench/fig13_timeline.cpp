// Figure 13 — bursty events from uspolitics over the Jun-Nov 2016
// timeline, split into the Democrats / Republican categories (the
// paper renders this at estorm.org; we print a weekly console
// timeline of the strongest estimated burst per party).
//
// Paper shape: intermittent spikes across the whole period for both
// parties, with landmark bursts around the conventions (mid/late
// July) and election day (Nov 8).

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/cm_pbe.h"

using namespace bursthist;
using namespace bursthist::bench;

int main(int argc, char** argv) {
  BenchConfig cfg = ParseArgs(argc, argv);
  Banner(cfg,
         "Figure 13: uspolitics burst timeline by party (CM-PBE-1 "
         "estimates)",
         "intermittent spikes all period; landmark bursts near the "
         "conventions (Jul) and election day (Nov 8)");

  Dataset ds = MakeUsPolitics(cfg.Scenario());
  std::printf("%zu records, K=%u\n", ds.stream.size(), ds.universe_size);

  Pbe1Options cell;
  cell.buffer_points = 1500;
  cell.budget_points = 150;
  // A per-event rendering needs a cleaner grid than the point-query
  // experiments: with K = 1,689 ids a 55-cell row mixes ~30 events per
  // cell and every landmark spike would bleed into both parties.
  CmPbeOptions grid;
  grid.depth = 3;
  grid.width = 1024;
  grid.seed = cfg.seed;
  CmPbe<Pbe1> cm(grid, cell);
  for (const auto& r : ds.stream.records()) cm.Append(r.id, r.time);
  cm.Finalize();
  std::printf("sketch size: %.2f MB\n\n", cm.SizeBytes() / 1048576.0);

  const Timestamp tau = kSecondsPerDay;
  std::printf("%6s %6s  %14s %14s  %s\n", "week", "day", "Democrats",
              "Republican", "bar (max of the two, '#' ~ relative)");

  // Daily max estimated burstiness per party; print per day, mark the
  // weekly boundary.
  struct DayRow {
    double dem, rep;
  };
  std::vector<DayRow> rows;
  double global_max = 1.0;
  for (Timestamp day = 1; day <= 183; ++day) {
    const Timestamp t = day * kSecondsPerDay;
    DayRow row{0.0, 0.0};
    for (EventId e = 0; e < ds.universe_size; ++e) {
      const double b = cm.EstimateBurstiness(e, t, tau);
      double& slot = ds.category[e] == 0 ? row.dem : row.rep;
      slot = std::max(slot, b);
    }
    global_max = std::max(global_max, std::max(row.dem, row.rep));
    rows.push_back(row);
  }

  for (size_t i = 0; i < rows.size(); ++i) {
    const double peak = std::max(rows[i].dem, rows[i].rep);
    // Only print notable days plus weekly anchors to keep the console
    // output readable.
    const bool weekly = (i % 7 == 0);
    const bool notable = peak > 0.15 * global_max;
    if (!weekly && !notable) continue;
    const int bar = static_cast<int>(40.0 * peak / global_max);
    std::printf("%6zu %6zu  %14.0f %14.0f  %.*s%s\n", i / 7 + 1, i + 1,
                rows[i].dem, rows[i].rep, bar,
                "########################################",
                notable ? "  <-- burst" : "");
  }

  // Landmark check.
  auto peak_in = [&](size_t day_lo, size_t day_hi) {
    double p = 0.0;
    size_t d = day_lo;
    for (size_t i = day_lo; i <= day_hi && i < rows.size(); ++i) {
      const double v = std::max(rows[i].dem, rows[i].rep);
      if (v > p) {
        p = v;
        d = i + 1;
      }
    }
    return std::make_pair(p, d);
  };
  Rule();
  auto [conv_peak, conv_day] = peak_in(44, 62);     // conventions window
  auto [elec_peak, elec_day] = peak_in(155, 165);   // election window
  std::printf("convention window (days 45-63): peak %.0f on day %zu\n",
              conv_peak, conv_day);
  std::printf("election window  (days 156-166): peak %.0f on day %zu\n",
              elec_peak, elec_day);
  return 0;
}
