// Sharded-ingest scaling: batched-ingest throughput of a
// ClusterEngine at 1 / 2 / 4 shards on the bursty olympicrio mixture,
// against a plain single DurableBurstEngine baseline.
//
// Each shard owns its WAL, snapshot lineage, and sketch tree, so the
// per-record sketch work AND the WAL writes parallelize across shard
// workers; AppendBatch partitions each batch by the id-hash router and
// dispatches the sub-batches concurrently. The expectation is
// near-linear scaling while cores last: >= 2.5x at 4 shards (the CI
// acceptance floor for this table). A scatter-gather query section
// reports what fan-out costs reads.

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "recovery/durable_engine.h"
#include "shard/cluster_engine.h"
#include "util/env.h"

using namespace bursthist;
using namespace bursthist::bench;

namespace {

struct Timed {
  double seconds;
  uint64_t records;
  double PerSecond() const { return records / seconds; }
};

template <typename Fn>
Timed Time(uint64_t records, Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return {std::chrono::duration<double>(t1 - t0).count(), records};
}

// Cluster directories nest one level (dir/shard-000/wal-...).
void RemoveTree(Env* env, const std::string& dir) {
  auto names = env->ListDir(dir);
  if (names.ok()) {
    for (const auto& n : names.value()) {
      const std::string path = dir + "/" + n;
      auto nested = env->ListDir(path);
      if (nested.ok()) {
        for (const auto& m : nested.value()) (void)env->DeleteFile(path + "/" + m);
        ::rmdir(path.c_str());
      }
      (void)env->DeleteFile(path);
    }
  }
  ::rmdir(dir.c_str());
}

constexpr size_t kBatch = 1024;

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg = ParseArgs(argc, argv);
  Banner(cfg, "Sharded-cluster ingest scaling (AppendBatch, batch=1024)",
         ">= 2.5x records/s at 4 shards vs 1 while cores last");

  Dataset ds = MakeOlympicRio(cfg.Scenario());
  const uint64_t n = ds.stream.size();
  std::vector<WeightedRecord> records;
  records.reserve(n);
  for (const auto& r : ds.stream.records()) {
    records.push_back(WeightedRecord{r.id, r.time, 1});
  }
  std::printf("olympicrio: %llu records, universe %u, %ld cores\n\n",
              static_cast<unsigned long long>(n), ds.universe_size,
              ::sysconf(_SC_NPROCESSORS_ONLN));

  BurstEngineOptions<Pbe1> o;
  o.universe_size = ds.universe_size;

  Env* env = Env::Default();
  const std::string root = "/tmp/bursthist_shard_bench";
  RemoveTree(env, root);
  (void)env->CreateDirIfMissing(root);

  std::printf("%-34s %14s %12s\n", "configuration", "records/s", "speedup");

  // Baseline: one plain durable engine, same batched path.
  double single_rate = 0.0;
  {
    const std::string dir = root + "/single";
    (void)env->CreateDirIfMissing(dir);
    auto durable = DurableBurstEngine<Pbe1>::Open(env, dir, o);
    if (!durable.ok()) {
      std::printf("open failed: %s\n", durable.status().ToString().c_str());
      return 1;
    }
    Timed t = Time(n, [&] {
      for (size_t i = 0; i < records.size(); i += kBatch) {
        const size_t len = std::min(kBatch, records.size() - i);
        size_t applied = 0;
        (void)durable.value()->AppendBatch(
            std::span<const WeightedRecord>(records.data() + i, len),
            &applied);
      }
      (void)durable.value()->Sync();
    });
    single_rate = t.PerSecond();
    std::printf("%-34s %14.0f %11.2fx\n", "durable engine (no cluster)",
                single_rate, 1.0);
  }

  double rate_at[5] = {0, 0, 0, 0, 0};
  for (size_t shards : {1, 2, 4}) {
    const std::string dir = root + "/c" + std::to_string(shards);
    (void)env->CreateDirIfMissing(dir);
    shard::ClusterOptions copts;
    copts.shards = shards;
    auto cluster = shard::ClusterEngine<Pbe1>::Open(env, dir, o, copts);
    if (!cluster.ok()) {
      std::printf("open failed: %s\n", cluster.status().ToString().c_str());
      return 1;
    }
    Timed t = Time(n, [&] {
      for (size_t i = 0; i < records.size(); i += kBatch) {
        const size_t len = std::min(kBatch, records.size() - i);
        size_t applied = 0;
        (void)cluster.value()->AppendBatch(
            std::span<const WeightedRecord>(records.data() + i, len),
            &applied);
      }
      (void)cluster.value()->Sync();
    });
    rate_at[shards] = t.PerSecond();
    char label[48];
    std::snprintf(label, sizeof(label), "cluster, %zu shard%s", shards,
                  shards == 1 ? "" : "s");
    std::printf("%-34s %14.0f %11.2fx\n", label, t.PerSecond(),
                t.PerSecond() / rate_at[1]);

    // Scatter-gather read cost on the loaded cluster: BEVENT and TOPK
    // fan out to every shard and merge; POINT routes to one shard.
    auto snap = cluster.value()->AcquireSnapshot();
    const Timestamp t_mid = ds.t_begin + (ds.t_end - ds.t_begin) / 2;
    const Timestamp tau = kSecondsPerDay;
    constexpr int kReps = 50;
    Timed q_point = Time(kReps, [&] {
      for (int i = 0; i < kReps; ++i) {
        (void)snap->Point(static_cast<EventId>(i) % ds.universe_size, t_mid,
                          tau);
      }
    });
    Timed q_event = Time(kReps, [&] {
      for (int i = 0; i < kReps; ++i) (void)snap->BurstyEvent(t_mid, 8.0, tau);
    });
    Timed q_topk = Time(kReps, [&] {
      for (int i = 0; i < kReps; ++i) (void)snap->TopK(t_mid, 10, tau);
    });
    std::printf("%-34s point %6.1fus  bevent %8.1fus  topk %8.1fus\n", "",
                q_point.seconds / kReps * 1e6, q_event.seconds / kReps * 1e6,
                q_topk.seconds / kReps * 1e6);
  }

  Rule();
  std::printf("4-shard speedup vs 1-shard cluster: %.2fx (floor 2.5x)\n",
              rate_at[4] / rate_at[1]);
  std::printf("1-shard cluster overhead vs plain engine: %.2fx\n",
              rate_at[1] / single_rate);

  RemoveTree(env, root + "/single");
  RemoveTree(env, root + "/c1");
  RemoveTree(env, root + "/c2");
  RemoveTree(env, root + "/c4");
  RemoveTree(env, root);
  bursthist::bench::MaybeEmitMetrics(cfg);
  return 0;
}
