// Snapshot-persistent-CM comparison table.
//
// PBE-2 is introduced as "an improvement of Persistent Count-Min
// sketch" (Section III). The closest simple persistent CM is a
// counter grid checkpointed on a fixed time grid; this table puts it
// against CM-PBE-2 at several snapshot resolutions: space explodes as
// the snapshot interval shrinks, yet the burstiness error stays poor
// until the interval is well below the burst span — while CM-PBE-2
// gets both from one curve-per-cell structure.

#include <cstdio>

#include "bench_common.h"
#include "core/cm_pbe.h"
#include "core/exact_store.h"
#include "eval/metrics.h"
#include "sketch/snapshot_cm.h"

using namespace bursthist;
using namespace bursthist::bench;

int main(int argc, char** argv) {
  BenchConfig cfg = ParseArgs(argc, argv);
  Banner(cfg,
         "Persistent-CM (checkpointing) baseline vs CM-PBE-2",
         "checkpointing pays linear space for time resolution; CM-PBE-2 "
         "gets resolution from its per-cell curves");

  Dataset ds = MakeOlympicRio(cfg.Scenario());
  ExactBurstStore exact(ds.universe_size);
  (void)exact.AppendStream(ds.stream);
  std::printf("dataset %s: %zu records, K=%u, tau = 1 day\n\n",
              ds.name.c_str(), ds.stream.size(), ds.universe_size);

  // Two query regimes:
  //  * tau = 1 day, uniform random (e, t): the snapshot grid gets
  //    lucky here — t, t-tau, t-2tau share the same phase inside the
  //    snapshot interval, so its staleness largely cancels in the
  //    second difference.
  //  * tau = 1 hour, (e, t) sampled from the stream itself (active
  //    instants): any snapshot interval >= tau aliases the burst
  //    frequency and the estimate collapses to ~0 — resolution is
  //    capped by the checkpoint grid, which is the weakness CM-PBE
  //    removes.
  Rng qrng(cfg.seed ^ 0x9c3);
  auto uniform_q = SampleEventTimeQueries(ds.universe_size, 0,
                                          ds.stream.MaxTime(), cfg.queries,
                                          &qrng);
  std::vector<std::pair<EventId, Timestamp>> active_q;
  for (size_t i = 0; i < cfg.queries; ++i) {
    const auto& r =
        ds.stream.records()[qrng.NextBelow(ds.stream.size())];
    active_q.emplace_back(r.id, r.time);
  }

  auto report = [&](const char* label, const auto& sketch, double mb) {
    auto day = MeasurePointErrorMulti(sketch, exact, uniform_q,
                                      kSecondsPerDay);
    auto hour = MeasurePointErrorMulti(sketch, exact, active_q, 3600);
    std::printf("%-24s %10.2f %14.2f %14.2f\n", label, mb, day.mean_abs,
                hour.mean_abs);
  };

  std::printf("%-24s %10s %14s %14s\n", "structure", "space MB",
              "err tau=1d", "err tau=1h*");
  for (Timestamp hours : {24, 6, 1}) {
    SnapshotCmOptions o;
    o.depth = 2;
    o.width = 55;
    o.snapshot_interval = hours * 3600;
    SnapshotCmSketch pcm(o);
    for (const auto& r : ds.stream.records()) pcm.Append(r.id, r.time);
    pcm.Finalize();
    char label[64];
    std::snprintf(label, sizeof(label), "snapshot-CM @ %lldh",
                  static_cast<long long>(hours));
    report(label, pcm, pcm.SizeBytes() / 1048576.0);
  }
  for (double gamma : {20.0, 5.0}) {
    Pbe2Options cell;
    cell.gamma = gamma;
    CmPbeOptions grid = CmPbeOptions::FromGuarantee(0.05, 0.2, cfg.seed);
    CmPbe<Pbe2> cm(grid, cell);
    for (const auto& r : ds.stream.records()) cm.Append(r.id, r.time);
    cm.Finalize();
    char label[64];
    std::snprintf(label, sizeof(label), "CM-PBE-2 gamma=%.0f", gamma);
    report(label, cm, cm.SizeBytes() / 1048576.0);
  }
  std::printf("\n(*) tau = 1 hour measured at active instants sampled from "
              "the stream.\n");
  return 0;
}
