// Figure 7 — "Two events in olympicrio": daily incoming rate and
// burstiness of the soccer and swimming streams, tau = 86,400 s.
//
// Paper shape: swimming's activity concentrates in the first ~9 days
// (big early burstiness, then both rate and burstiness fall to ~0);
// soccer bursts repeatedly through the month with the largest burst
// right before the final (~day 20).

#include <cstdio>

#include "bench_common.h"
#include "stream/event_stream.h"

using namespace bursthist;
using namespace bursthist::bench;

int main(int argc, char** argv) {
  BenchConfig cfg = ParseArgs(argc, argv);
  Banner(cfg, "Figure 7: incoming rate and burstiness of soccer/swimming",
         "soccer bursts all month, max right before the final (day ~20); "
         "swimming quiet after day ~10");

  SingleEventStream soccer = MakeSoccer(cfg.Scenario());
  SingleEventStream swimming = MakeSwimming(cfg.Scenario());
  std::printf("soccer: %zu mentions, swimming: %zu mentions\n\n",
              soccer.size(), swimming.size());

  const Timestamp tau = kSecondsPerDay;
  std::printf("%4s %15s %15s %15s %15s\n", "day", "soccer rate/d",
              "swim rate/d", "soccer burst", "swim burst");
  Timestamp max_soccer_day = 0, max_swim_day = 0;
  Burstiness max_soccer = 0, max_swim = 0;
  for (Timestamp day = 1; day <= 31; ++day) {
    const Timestamp t = day * kSecondsPerDay;
    const Count r_soc = soccer.BurstFrequency(t, tau);
    const Count r_swim = swimming.BurstFrequency(t, tau);
    const Burstiness b_soc = soccer.BurstinessAt(t, tau);
    const Burstiness b_swim = swimming.BurstinessAt(t, tau);
    std::printf("%4lld %15llu %15llu %15lld %15lld\n",
                static_cast<long long>(day),
                static_cast<unsigned long long>(r_soc),
                static_cast<unsigned long long>(r_swim),
                static_cast<long long>(b_soc),
                static_cast<long long>(b_swim));
    if (b_soc > max_soccer) {
      max_soccer = b_soc;
      max_soccer_day = day;
    }
    if (b_swim > max_swim) {
      max_swim = b_swim;
      max_swim_day = day;
    }
  }
  Rule();
  std::printf("largest soccer burst: day %lld (b=%lld)   "
              "largest swimming burst: day %lld (b=%lld)\n",
              static_cast<long long>(max_soccer_day),
              static_cast<long long>(max_soccer),
              static_cast<long long>(max_swim_day),
              static_cast<long long>(max_swim));
  return 0;
}
