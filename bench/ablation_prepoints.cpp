// Ablation — PBE-2's augmented point set (Section III-B).
//
// The paper inserts an extra point (t_i - 1, F(t_i - 1)) before every
// rise so that no feasible line can overestimate the flat stretch in
// front of a jump. This bench builds the PLA with and without the
// augmentation and reports: segment counts (the augmentation costs
// constraints), how often and how far the unaugmented model
// overestimates F, and the resulting burstiness error.

#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "pla/online_pla.h"
#include "stream/frequency_curve.h"

using namespace bursthist;
using namespace bursthist::bench;

namespace {

struct Audit {
  size_t segments = 0;
  size_t overestimates = 0;  // timestamps with F~ > F
  double worst_over = 0.0;
  double mean_abs_b_err = 0.0;
};

Audit Run(const SingleEventStream& s, double gamma, bool augmented) {
  FrequencyCurve curve(s);
  LinearModel model = augmented ? BuildPla(curve, gamma)
                                : BuildPlaNoAugmentation(curve, gamma);
  Audit a;
  a.segments = model.size();
  const Timestamp last = s.times().back();
  const Timestamp step = std::max<Timestamp>(1, last / 20000);
  for (Timestamp t = 0; t <= last; t += step) {
    const double over =
        model.Evaluate(t) - static_cast<double>(curve.Evaluate(t));
    if (over > 1e-6) {
      ++a.overestimates;
      a.worst_over = std::max(a.worst_over, over);
    }
  }
  const Timestamp tau = kSecondsPerDay;
  size_t n = 0;
  double err = 0.0;
  for (Timestamp t = 0; t <= last + 2 * tau; t += last / 500 + 1) {
    err += std::abs(model.EstimateBurstiness(t, tau) -
                    static_cast<double>(curve.BurstinessAt(t, tau)));
    ++n;
  }
  a.mean_abs_b_err = err / static_cast<double>(n);
  return a;
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg = ParseArgs(argc, argv);
  Banner(cfg,
         "Ablation: PBE-2 with vs without the pre-rise augmentation points",
         "without augmentation the no-overestimate guarantee breaks on flat "
         "stretches before jumps");

  SingleEventStream soccer = MakeSoccer(cfg.Scenario());
  std::printf("soccer: %zu mentions\n\n", soccer.size());
  std::printf("%8s %6s %10s %14s %12s %14s\n", "gamma", "aug", "segments",
              "overest. pts", "worst over", "mean |b err|");
  for (double gamma : {4.0, 16.0, 64.0}) {
    for (bool aug : {true, false}) {
      Audit a = Run(soccer, gamma, aug);
      std::printf("%8.0f %6s %10zu %14zu %12.1f %14.2f\n", gamma,
                  aug ? "yes" : "no", a.segments, a.overestimates,
                  a.worst_over, a.mean_abs_b_err);
    }
  }
  return 0;
}
