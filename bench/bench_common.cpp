#include "bench_common.h"

#include <cstdlib>
#include <cstring>

#include "obs/metrics.h"

namespace bursthist {
namespace bench {

BenchConfig ParseArgs(int argc, char** argv) {
  BenchConfig cfg;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--scale=", 8) == 0) {
      const char* v = arg + 8;
      if (std::strcmp(v, "small") == 0) {
        cfg.scale = 0.02;
      } else if (std::strcmp(v, "medium") == 0) {
        cfg.scale = 0.2;
      } else if (std::strcmp(v, "paper") == 0) {
        cfg.scale = 1.0;
      } else {
        cfg.scale = std::atof(v);
        if (cfg.scale <= 0.0) {
          std::fprintf(stderr,
                       "usage: %s [--scale=small|medium|paper|<f>] "
                       "[--seed=<u64>]\n",
                       argv[0]);
          std::exit(2);
        }
      }
      cfg.scale_name = v;
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      cfg.seed = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strcmp(arg, "--metrics") == 0) {
      cfg.emit_metrics = true;
    } else if (std::strncmp(arg, "--metrics=", 10) == 0) {
      cfg.emit_metrics = true;
      cfg.metrics_path = arg + 10;
    } else if (std::strcmp(arg, "--help") == 0) {
      std::printf("usage: %s [--scale=small|medium|paper|<f>] "
                  "[--seed=<u64>] [--metrics[=path]]\n",
                  argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg);
      std::exit(2);
    }
  }
  return cfg;
}

void Banner(const BenchConfig& cfg, const char* what, const char* expect) {
  Rule();
  std::printf("%s\n", what);
  std::printf("scale=%s (x%.3g of the paper's N), seed=%llu\n",
              cfg.scale_name.c_str(), cfg.scale,
              static_cast<unsigned long long>(cfg.seed));
  if (expect != nullptr && expect[0] != '\0') {
    std::printf("paper shape: %s\n", expect);
  }
  Rule();
}

void Rule() {
  std::printf("-------------------------------------------------------------"
              "-----------------\n");
}

void MaybeEmitMetrics(const BenchConfig& cfg) {
  if (!cfg.emit_metrics) return;
  obs::RegisterStandardMetrics();
  std::string text;
  obs::MetricsRegistry::Global().WritePrometheus(&text);
  if (cfg.metrics_path.empty()) {
    std::fputs(text.c_str(), stderr);
    return;
  }
  std::FILE* f = std::fopen(cfg.metrics_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for metrics snapshot\n",
                 cfg.metrics_path.c_str());
    return;
  }
  std::fputs(text.c_str(), f);
  std::fclose(f);
}

std::vector<std::pair<EventId, Timestamp>> SampleEventTimeQueries(
    EventId universe, Timestamp t_begin, Timestamp t_end, size_t count,
    Rng* rng) {
  std::vector<std::pair<EventId, Timestamp>> out;
  out.reserve(count);
  const uint64_t span = static_cast<uint64_t>(t_end - t_begin) + 1;
  for (size_t i = 0; i < count; ++i) {
    out.emplace_back(
        static_cast<EventId>(rng->NextBelow(universe)),
        t_begin + static_cast<Timestamp>(rng->NextBelow(span)));
  }
  return out;
}

}  // namespace bench
}  // namespace bursthist
