// Storage-format table: serialized bytes per retained item for every
// persistent structure, and the delta+varint payload's win over a
// fixed-width encoding (docs/FORMAT.md's claims, measured).

#include <cstdio>

#include "bench_common.h"
#include "core/cm_pbe.h"
#include "core/pbe1.h"
#include "core/pbe2.h"
#include "sketch/snapshot_cm.h"
#include "stream/frequency_curve.h"

using namespace bursthist;
using namespace bursthist::bench;

int main(int argc, char** argv) {
  BenchConfig cfg = ParseArgs(argc, argv);
  Banner(cfg,
         "Serialized sizes: delta+varint payloads vs in-memory/fixed "
         "width",
         "model payloads shrink ~4x+ on unit-scale deltas");

  SingleEventStream soccer = MakeSoccer(cfg.Scenario());
  std::printf("soccer: %zu mentions\n\n", soccer.size());

  std::printf("%-26s %12s %14s %14s %8s\n", "structure", "items",
              "in-memory KB", "serialized KB", "ratio");

  {
    Pbe1Options o;
    o.buffer_points = 1500;
    o.budget_points = 120;
    Pbe1 pbe(o);
    for (Timestamp t : soccer.times()) pbe.Append(t);
    pbe.Finalize();
    BinaryWriter w;
    pbe.Serialize(&w);
    std::printf("%-26s %12zu %14.1f %14.1f %7.1fx\n", "PBE-1 (eta=120)",
                pbe.PointCount(), pbe.SizeBytes() / 1024.0,
                w.bytes().size() / 1024.0,
                static_cast<double>(pbe.SizeBytes()) /
                    static_cast<double>(w.bytes().size()));
  }
  {
    Pbe2Options o;
    o.gamma = 10.0;
    Pbe2 pbe(o);
    for (Timestamp t : soccer.times()) pbe.Append(t);
    pbe.Finalize();
    BinaryWriter w;
    pbe.Serialize(&w);
    std::printf("%-26s %12zu %14.1f %14.1f %7.1fx\n", "PBE-2 (gamma=10)",
                pbe.SegmentCount(), pbe.SizeBytes() / 1024.0,
                w.bytes().size() / 1024.0,
                static_cast<double>(pbe.SizeBytes()) /
                    static_cast<double>(w.bytes().size()));
  }
  {
    Dataset ds = MakeOlympicRio(cfg.Scenario());
    Pbe1Options cell;
    cell.buffer_points = 1500;
    cell.budget_points = 120;
    CmPbeOptions grid = CmPbeOptions::FromGuarantee(0.05, 0.2, cfg.seed);
    CmPbe<Pbe1> cm(grid, cell);
    for (const auto& r : ds.stream.records()) cm.Append(r.id, r.time);
    cm.Finalize();
    BinaryWriter w;
    cm.Serialize(&w);
    std::printf("%-26s %12s %14.1f %14.1f %7.1fx\n", "CM-PBE-1 grid", "-",
                cm.SizeBytes() / 1024.0, w.bytes().size() / 1024.0,
                static_cast<double>(cm.SizeBytes()) /
                    static_cast<double>(w.bytes().size()));

    SnapshotCmOptions so;
    so.depth = 2;
    so.width = 55;
    so.snapshot_interval = 6 * 3600;
    SnapshotCmSketch pcm(so);
    for (const auto& r : ds.stream.records()) pcm.Append(r.id, r.time);
    pcm.Finalize();
    BinaryWriter w2;
    pcm.Serialize(&w2);
    std::printf("%-26s %12zu %14.1f %14.1f %7.1fx\n", "snapshot-CM @6h",
                pcm.snapshot_count(), pcm.SizeBytes() / 1024.0,
                w2.bytes().size() / 1024.0,
                static_cast<double>(pcm.SizeBytes()) /
                    static_cast<double>(w2.bytes().size()));
  }
  Rule();
  std::printf("ratio = in-memory bytes / serialized bytes (higher = better "
              "compression);\nsnapshot-CM stores raw counter grids, so its "
              "ratio stays ~1.\n");
  return 0;
}
