// Parallel construction scaling (Section III-A's throughput remark).
//
// CM grid rows and dyadic levels are independent, so construction
// parallelizes with no synchronization. This table reports build time
// vs worker count; the result is bit-identical to serial ingestion
// (asserted in tests/parallel_ingest_test).

#include <cstdio>
#include <thread>

#include "bench_common.h"
#include "core/parallel_ingest.h"
#include "util/stopwatch.h"

using namespace bursthist;
using namespace bursthist::bench;

int main(int argc, char** argv) {
  BenchConfig cfg = ParseArgs(argc, argv);
  Banner(cfg,
         "Parallel construction scaling (CM-PBE-1 grid rows / dyadic "
         "levels)",
         "build time shrinks with workers until the per-row work is "
         "exhausted");

  Dataset ds = MakeOlympicRio(cfg.Scenario());
  std::printf("dataset %s: %zu records, K=%u, hardware threads: %u\n\n",
              ds.name.c_str(), ds.stream.size(), ds.universe_size,
              std::thread::hardware_concurrency());

  Pbe1Options cell;
  cell.buffer_points = 1500;
  cell.budget_points = 120;
  CmPbeOptions grid;
  grid.depth = 8;  // more rows than the paper grid to expose scaling
  grid.width = 55;
  grid.seed = cfg.seed;

  std::printf("CM-PBE-1 grid (d=%zu, w=%zu):\n", grid.depth, grid.width);
  std::printf("%10s %12s %10s\n", "workers", "build s", "speedup");
  double base = 0.0;
  for (size_t threads : {1, 2, 4, 8}) {
    Stopwatch sw;
    auto built = BuildCmPbeParallel<Pbe1>(ds.stream, grid, cell, threads);
    const double secs = sw.Seconds();
    if (threads == 1) base = secs;
    std::printf("%10zu %12.2f %9.2fx\n", threads, secs,
                base > 0 ? base / secs : 0.0);
    (void)built;
  }

  CmPbeOptions paper_grid = CmPbeOptions::FromGuarantee(0.05, 0.2, cfg.seed);
  std::printf("\ndyadic index (%u ids -> %zu levels):\n", ds.universe_size,
              DyadicBurstIndex<Pbe1>(ds.universe_size, paper_grid, cell)
                  .levels());
  std::printf("%10s %12s %10s\n", "workers", "build s", "speedup");
  base = 0.0;
  for (size_t threads : {1, 2, 4, 8}) {
    Stopwatch sw;
    auto built = BuildDyadicParallel<Pbe1>(ds.stream, ds.universe_size,
                                           paper_grid, cell, threads);
    const double secs = sw.Seconds();
    if (threads == 1) base = secs;
    std::printf("%10zu %12.2f %9.2fx\n", threads, secs,
                base > 0 ? base / secs : 0.0);
    (void)built;
  }
  return 0;
}
