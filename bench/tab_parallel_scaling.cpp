// Parallel construction scaling (Section III-A's throughput remark).
//
// CM grid rows and dyadic levels are independent, so construction
// parallelizes with no synchronization. Segment parallelism splits the
// stream itself into mutually exclusive time ranges and concatenates
// the partial states — the axis the paper's remark names. This table
// reports build time vs worker count; row/level results are
// bit-identical to serial ingestion (asserted in
// tests/parallel_ingest_test), and the segment-parallel build's query
// agreement with serial is reported below (and asserted in
// tests/segment_parallel_test).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <thread>

#include "bench_common.h"
#include "core/burst_queries.h"
#include "core/parallel_ingest.h"
#include "util/stopwatch.h"

using namespace bursthist;
using namespace bursthist::bench;

namespace {
// One event's leaf-level view, the shape BurstyTimes() consumes.
struct LeafView {
  static constexpr bool kPiecewiseConstant = Pbe1::kPiecewiseConstant;
  const CmPbe<Pbe1>* grid;
  EventId e;
  double EstimateBurstiness(Timestamp t, Timestamp tau) const {
    return grid->EstimateBurstiness(e, t, tau);
  }
  std::vector<Timestamp> Breakpoints() const { return grid->Breakpoints(e); }
};
}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg = ParseArgs(argc, argv);
  Banner(cfg,
         "Parallel construction scaling (CM-PBE-1 grid rows / dyadic "
         "levels)",
         "build time shrinks with workers until the per-row work is "
         "exhausted");

  Dataset ds = MakeOlympicRio(cfg.Scenario());
  std::printf("dataset %s: %zu records, K=%u, hardware threads: %u\n\n",
              ds.name.c_str(), ds.stream.size(), ds.universe_size,
              std::thread::hardware_concurrency());

  Pbe1Options cell;
  cell.buffer_points = 1500;
  cell.budget_points = 120;
  CmPbeOptions grid;
  grid.depth = 8;  // more rows than the paper grid to expose scaling
  grid.width = 55;
  grid.seed = cfg.seed;

  std::printf("CM-PBE-1 grid (d=%zu, w=%zu):\n", grid.depth, grid.width);
  std::printf("%10s %12s %10s\n", "workers", "build s", "speedup");
  double base = 0.0;
  for (size_t threads : {1, 2, 4, 8}) {
    Stopwatch sw;
    auto built = BuildCmPbeParallel<Pbe1>(ds.stream, grid, cell, threads);
    const double secs = sw.Seconds();
    if (threads == 1) base = secs;
    std::printf("%10zu %12.2f %9.2fx\n", threads, secs,
                base > 0 ? base / secs : 0.0);
    (void)built;
  }

  CmPbeOptions paper_grid = CmPbeOptions::FromGuarantee(0.05, 0.2, cfg.seed);
  std::printf("\ndyadic index (%u ids -> %zu levels):\n", ds.universe_size,
              DyadicBurstIndex<Pbe1>(ds.universe_size, paper_grid, cell)
                  .levels());
  std::printf("%10s %12s %10s\n", "workers", "build s", "speedup");
  base = 0.0;
  for (size_t threads : {1, 2, 4, 8}) {
    Stopwatch sw;
    auto built = BuildDyadicParallel<Pbe1>(ds.stream, ds.universe_size,
                                           paper_grid, cell, threads);
    const double secs = sw.Seconds();
    if (threads == 1) base = secs;
    std::printf("%10zu %12.2f %9.2fx\n", threads, secs,
                base > 0 ? base / secs : 0.0);
    (void)built;
  }

  // Segment parallelism: the stream splits into mutually exclusive
  // time ranges, each built independently and concatenated in time
  // order. Unlike row/level parallelism this axis scales past the grid
  // shape — workers stay busy regardless of depth or level count.
  std::printf("\ndyadic index, segment-parallel (mutually exclusive time "
              "ranges):\n");
  std::printf("%10s %12s %10s\n", "workers", "build s", "speedup");
  base = 0.0;
  DyadicBurstIndex<Pbe1> serial_build(ds.universe_size, paper_grid, cell);
  DyadicBurstIndex<Pbe1> segment_build = serial_build;
  for (size_t threads : {1, 2, 4, 8}) {
    Stopwatch sw;
    auto built = BuildDyadicSegmentParallel<Pbe1>(
        ds.stream, ds.universe_size, paper_grid, cell, threads);
    const double secs = sw.Seconds();
    if (threads == 1) {
      base = secs;
      serial_build = std::move(built);
    } else {
      std::swap(segment_build, built);
    }
    std::printf("%10zu %12.2f %9.2fx\n", threads, secs,
                base > 0 ? base / secs : 0.0);
  }

  // Query agreement of the widest segment build vs serial. With lossy
  // cells the segment boundaries move buffer resets, so POINT
  // estimates may differ within the shared error band (with lossless
  // cells the builds are bit-identical; see
  // tests/segment_parallel_test).
  const Timestamp tau = kSecondsPerDay;
  Rng rng(cfg.seed);
  auto queries = SampleEventTimeQueries(ds.universe_size, ds.t_begin,
                                        ds.t_end, cfg.queries, &rng);
  double max_dpoint = 0.0;
  double max_abs = 0.0;
  for (const auto& [e, t] : queries) {
    const double s = serial_build.EstimateBurstiness(e, t, tau);
    const double p = segment_build.EstimateBurstiness(e, t, tau);
    max_dpoint = std::max(max_dpoint, std::fabs(s - p));
    max_abs = std::max(max_abs, std::fabs(s));
  }
  const double theta = std::max(1.0, max_abs / 4.0);
  size_t event_agree = 0, event_total = 8;
  for (size_t i = 1; i <= event_total; ++i) {
    const Timestamp t =
        ds.t_begin + (ds.t_end - ds.t_begin) * static_cast<Timestamp>(i) /
                         static_cast<Timestamp>(event_total);
    if (serial_build.BurstyEvents(t, theta, tau) ==
        segment_build.BurstyEvents(t, theta, tau)) {
      ++event_agree;
    }
  }
  size_t time_agree = 0, time_total = 8;
  for (size_t i = 0; i < time_total; ++i) {
    const EventId e =
        static_cast<EventId>((i * 131) % ds.universe_size);
    const auto a =
        BurstyTimes(LeafView{&serial_build.level(0), e}, theta, tau);
    const auto b =
        BurstyTimes(LeafView{&segment_build.level(0), e}, theta, tau);
    if (a == b) ++time_agree;
  }
  std::printf(
      "\nquery agreement, 8-worker segment build vs serial (theta=%.1f, "
      "tau=%lld):\n", theta, static_cast<long long>(tau));
  std::printf("  paper-default cells (lossy: boundary resets move "
              "compression, both builds stay\n  within the same 4*Delta "
              "band):\n");
  std::printf("  POINT        max |serial - segment| = %.4f over %zu "
              "queries (max |b| %.1f)\n",
              max_dpoint, queries.size(), max_abs);
  std::printf("  BURSTY EVENT identical result sets at %zu/%zu sampled "
              "times\n", event_agree, event_total);
  std::printf("  BURSTY TIME  identical interval lists for %zu/%zu sampled "
              "events\n", time_agree, time_total);

  // With lossless cells (budget == buffer) the staircase DP keeps every
  // corner and the segment build is bit-identical to serial: all three
  // query types must agree exactly.
  Pbe1Options exact_cell;
  exact_cell.buffer_points = 1500;
  exact_cell.budget_points = 1500;
  DyadicBurstIndex<Pbe1> exact_serial(ds.universe_size, paper_grid,
                                      exact_cell);
  for (const auto& r : ds.stream.records()) {
    exact_serial.Append(r.id, r.time);
  }
  exact_serial.Finalize();
  auto exact_segment = BuildDyadicSegmentParallel<Pbe1>(
      ds.stream, ds.universe_size, paper_grid, exact_cell, 8);
  double exact_dpoint = 0.0;
  for (const auto& [e, t] : queries) {
    exact_dpoint = std::max(
        exact_dpoint, std::fabs(exact_serial.EstimateBurstiness(e, t, tau) -
                                exact_segment.EstimateBurstiness(e, t, tau)));
  }
  size_t exact_event = 0;
  for (size_t i = 1; i <= event_total; ++i) {
    const Timestamp t =
        ds.t_begin + (ds.t_end - ds.t_begin) * static_cast<Timestamp>(i) /
                         static_cast<Timestamp>(event_total);
    if (exact_serial.BurstyEvents(t, theta, tau) ==
        exact_segment.BurstyEvents(t, theta, tau)) {
      ++exact_event;
    }
  }
  size_t exact_time = 0;
  for (size_t i = 0; i < time_total; ++i) {
    const EventId e = static_cast<EventId>((i * 131) % ds.universe_size);
    if (BurstyTimes(LeafView{&exact_serial.level(0), e}, theta, tau) ==
        BurstyTimes(LeafView{&exact_segment.level(0), e}, theta, tau)) {
      ++exact_time;
    }
  }
  std::printf("  lossless cells (segment build is bit-identical to "
              "serial):\n");
  std::printf("  POINT        max |serial - segment| = %.4f over %zu "
              "queries\n", exact_dpoint, queries.size());
  std::printf("  BURSTY EVENT identical result sets at %zu/%zu sampled "
              "times\n", exact_event, event_total);
  std::printf("  BURSTY TIME  identical interval lists for %zu/%zu sampled "
              "events\n", exact_time, time_total);
  bursthist::bench::MaybeEmitMetrics(cfg);
  return 0;
}
