// Related-work comparator table (Section VII): how the classic burst
// detectors' windows relate to the paper's acceleration burstiness on
// the soccer stream.
//
// Kleinberg's automaton, the MACD trending score, and dyadic-window
// detection all flag *elevated or rising volume*; the paper's
// burstiness is the *second difference* of cumulative volume. They
// overlap on sharp onsets and disagree on sustained plateaus — and,
// crucially, the classics need the raw stream at query time while the
// paper's sketches answer any historical window from KBs.

#include <algorithm>
#include <cstdio>

#include "baselines/kleinberg.h"
#include "baselines/macd.h"
#include "baselines/window_burst.h"
#include "bench_common.h"
#include "core/exact_store.h"
#include "eval/intervals.h"

using namespace bursthist;
using namespace bursthist::bench;

int main(int argc, char** argv) {
  BenchConfig cfg = ParseArgs(argc, argv);
  Banner(cfg,
         "Related-work detectors vs the paper's burstiness on soccer",
         "classic detectors flag volume; burstiness flags acceleration — "
         "high overlap on onsets, divergence on plateaus");

  SingleEventStream soccer = MakeSoccer(cfg.Scenario());
  std::printf("soccer: %zu mentions over 31 days\n\n", soccer.size());

  // The paper's definition, thresholded at 25%% of its daily peak.
  ExactBurstStore store(1);
  for (Timestamp t : soccer.times()) store.Append(0, t);
  const Timestamp tau = kSecondsPerDay;
  Burstiness peak = 0;
  for (Timestamp d = 1; d <= 31; ++d) {
    peak = std::max(peak, store.BurstinessAt(0, d * kSecondsPerDay, tau));
  }
  auto burstiness_iv =
      store.BurstyTimes(0, 0.25 * static_cast<double>(peak), tau);

  KleinbergOptions ko;
  ko.scaling = 2.5;
  ko.gamma = 5.0;
  auto kleinberg_iv = KleinbergBursts(soccer, ko);

  MacdOptions mo;
  mo.bucket_width = 3600;
  // Threshold relative to the score's own peak.
  double macd_peak = 0.0;
  for (const auto& p : MacdSeries(soccer, mo)) {
    macd_peak = std::max(macd_peak, p.score);
  }
  auto macd_iv = MacdBursts(soccer, mo, 0.25 * macd_peak);

  WindowBurstOptions wo;
  wo.bucket_width = 3600;
  wo.scales = 5;
  wo.k_sigma = 3.0;
  auto window_iv = WindowBursts(soccer, wo);

  struct Row {
    const char* name;
    const std::vector<TimeInterval>* iv;
  };
  const Row rows[] = {
      {"paper burstiness", &burstiness_iv},
      {"kleinberg", &kleinberg_iv},
      {"macd", &macd_iv},
      {"window", &window_iv},
  };

  std::printf("%-18s %10s %12s %12s %10s\n", "detector", "intervals",
              "hours lit", "overlap", "jaccard");
  for (const auto& row : rows) {
    std::printf("%-18s %10zu %12.0f %11.0f%% %10.2f\n", row.name,
                row.iv->size(),
                static_cast<double>(CoveredTimestamps(*row.iv)) / 3600.0,
                100.0 * CoverageFraction(*row.iv, burstiness_iv),
                IntervalJaccard(*row.iv, burstiness_iv));
  }
  Rule();
  std::printf("overlap: share of each detector's flagged time that the "
              "paper's burstiness\nalso flags (burstiness row = 100%% by "
              "definition); jaccard vs burstiness.\n");
  return 0;
}
