// Durability-overhead table: ingest throughput of a bare BurstEngine
// vs the same engine behind DurableBurstEngine's WAL tee, with and
// without per-record fsync, plus checkpoint cost and recovery time.
//
// The WAL adds one 29-byte framed write per append; the expectation is
// that buffered logging costs a modest constant factor while fsync-per-
// record is dominated by device sync latency (orders of magnitude
// slower — that mode exists for power-loss durability per record, not
// throughput).

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <string>

#include "bench_common.h"
#include "core/burst_engine.h"
#include "recovery/durable_engine.h"
#include "util/env.h"

using namespace bursthist;
using namespace bursthist::bench;

namespace {

struct Timed {
  double seconds;
  uint64_t records;
  double PerSecond() const { return records / seconds; }
};

template <typename Fn>
Timed Time(uint64_t records, Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return {std::chrono::duration<double>(t1 - t0).count(), records};
}

void CleanDir(Env* env, const std::string& dir) {
  auto names = env->ListDir(dir);
  if (!names.ok()) return;
  for (const auto& n : names.value()) (void)env->DeleteFile(dir + "/" + n);
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg = ParseArgs(argc, argv);
  Banner(cfg, "WAL / snapshot durability overhead on ingest",
         "buffered WAL within ~2x of bare; fsync-per-record much slower");

  Dataset ds = MakeOlympicRio(cfg.Scenario());
  const uint64_t n = ds.stream.size();
  std::printf("olympic-rio: %llu records, universe %u\n\n",
              static_cast<unsigned long long>(n), ds.universe_size);

  BurstEngineOptions<Pbe1> o;
  o.universe_size = ds.universe_size;

  Env* env = Env::Default();
  const std::string dir = "/tmp/bursthist_wal_bench";
  (void)env->CreateDirIfMissing(dir);

  std::printf("%-34s %14s %12s\n", "configuration", "records/s", "vs bare");
  double bare_rate = 0.0;

  {
    BurstEngine1 engine(o);
    Timed t = Time(n, [&] {
      for (const auto& r : ds.stream.records()) {
        (void)engine.Append(r.id, r.time);
      }
    });
    bare_rate = t.PerSecond();
    std::printf("%-34s %14.0f %11.2fx\n", "bare engine (no durability)",
                bare_rate, 1.0);
  }
  {
    CleanDir(env, dir);
    auto durable = DurableBurstEngine1::Open(env, dir, o);
    if (!durable.ok()) {
      std::printf("open failed: %s\n", durable.status().ToString().c_str());
      return 1;
    }
    Timed t = Time(n, [&] {
      for (const auto& r : ds.stream.records()) {
        (void)durable.value()->Append(r.id, r.time);
      }
      (void)durable.value()->Sync();
    });
    std::printf("%-34s %14.0f %11.2fx\n", "durable, sync on barrier",
                t.PerSecond(), bare_rate / t.PerSecond());

    // Checkpoint cost on the fully-loaded engine.
    Timed cp = Time(1, [&] { (void)durable.value()->Checkpoint(); });
    std::printf("%-34s %13.1fms\n", "checkpoint (snapshot + prune)",
                cp.seconds * 1e3);
  }
  {
    // Recovery: reopen the checkpointed directory before it is reused.
    Timed t = Time(n, [&] {
      auto recovered = RecoverBurstEngine<Pbe1>(env, dir, o);
      if (!recovered.ok()) {
        std::printf("recover failed: %s\n",
                    recovered.status().ToString().c_str());
      }
    });
    std::printf("%-34s %13.1fms\n", "recovery (snapshot + WAL tail)",
                t.seconds * 1e3);
  }
  {
    // fsync per record is brutal; cap the sample so the bench stays
    // interactive and scale the rate from that sample.
    CleanDir(env, dir);
    DurabilityOptions d;
    d.sync_every_append = true;
    auto durable = DurableBurstEngine1::Open(env, dir, o, d);
    if (!durable.ok()) {
      std::printf("open failed: %s\n", durable.status().ToString().c_str());
      return 1;
    }
    const uint64_t sample = n < 2000 ? n : 2000;
    Timed t = Time(sample, [&] {
      for (uint64_t i = 0; i < sample; ++i) {
        const auto& r = ds.stream.records()[i];
        (void)durable.value()->Append(r.id, r.time);
      }
    });
    std::printf("%-34s %14.0f %11.2fx  (n=%llu sample)\n",
                "durable, fsync every record", t.PerSecond(),
                bare_rate / t.PerSecond(),
                static_cast<unsigned long long>(sample));
  }
  CleanDir(env, dir);
  ::rmdir(dir.c_str());
  bursthist::bench::MaybeEmitMetrics(cfg);
  return 0;
}
