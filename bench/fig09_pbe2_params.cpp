// Figure 9 — PBE-2 parameter study: sweep the error band gamma and
// report (a) space and construction time, (b) mean point-query error,
// on the soccer and swimming single-event streams.
//
// Paper shape: space falls steeply as gamma grows, flattening once the
// structure only tracks the large bursts; construction stays in the
// sub-second range; the measured error grows ~linearly with gamma and
// sits far below the worst-case 4*gamma.

#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "core/pbe2.h"
#include "eval/metrics.h"
#include "util/stopwatch.h"

using namespace bursthist;
using namespace bursthist::bench;

namespace {

void Sweep(const char* name, const SingleEventStream& stream,
           const BenchConfig& cfg) {
  std::printf("\n%s (%zu mentions)\n", name, stream.size());
  std::printf("%8s %12s %12s %12s %12s %10s\n", "gamma", "space KB",
              "build ms", "mean err", "max err", "4*gamma");
  for (double gamma : {2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0}) {
    Pbe2Options opt;
    opt.gamma = gamma;
    Stopwatch sw;
    Pbe2 pbe(opt);
    for (Timestamp t : stream.times()) pbe.Append(t);
    pbe.Finalize();
    const double build_ms = sw.Millis();

    Rng qrng(cfg.seed ^ static_cast<uint64_t>(gamma));
    auto times =
        SampleQueryTimes(0, stream.times().back(), cfg.queries, &qrng);
    auto stats = MeasurePointError(pbe, stream, times, kSecondsPerDay);
    std::printf("%8.0f %12.2f %12.2f %12.2f %12.1f %10.0f\n", gamma,
                pbe.SizeBytes() / 1024.0, build_ms, stats.mean_abs,
                stats.max_abs, 4.0 * gamma);
  }
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg = ParseArgs(argc, argv);
  Banner(cfg,
         "Figure 9: PBE-2 gamma sweep: space, construction time, "
         "point-query error",
         "space drops fast then flattens as gamma grows; error ~linear in "
         "gamma and well below the 4*gamma bound");
  SingleEventStream soccer = MakeSoccer(cfg.Scenario());
  SingleEventStream swimming = MakeSwimming(cfg.Scenario());
  Sweep("soccer", soccer, cfg);
  Sweep("swimming", swimming, cfg);
  return 0;
}
