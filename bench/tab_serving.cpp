// Serving-path costs: what a front-end pays for snapshot-isolated
// reads (see src/core/read_snapshot.h and src/server/).
//
// Columns per history size N:
//   * acquire(cold)  — AcquireSnapshot right after an append, i.e. the
//     full FinalizedClone deep copy of the dyadic index.
//   * acquire(warm)  — AcquireSnapshot with no intervening append: the
//     cached clone is shared, so this is shared_ptr bookkeeping.
//   * point 1thr / 4thr — POINT query throughput against one published
//     snapshot, single reader vs four concurrent readers (the
//     snapshot is immutable, so scaling should be near-linear).
//
// Expectation: cold acquisition grows with sketch size (not history
// length — the grid is fixed), warm acquisition is ~constant and
// orders of magnitude cheaper, and reader throughput scales with
// threads because no lock is held during queries.

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/burst_engine.h"
#include "core/read_snapshot.h"
#include "util/stopwatch.h"

using namespace bursthist;
using namespace bursthist::bench;

namespace {

BurstEngine<Pbe1> BuildEngine(EventId universe, size_t n, uint64_t seed) {
  BurstEngineOptions<Pbe1> options;
  options.universe_size = universe;
  BurstEngine<Pbe1> engine(options);
  Rng rng(seed);
  Timestamp t = 0;
  for (size_t i = 0; i < n; ++i) {
    t += static_cast<Timestamp>(rng.NextBelow(3));
    (void)engine.Append(static_cast<EventId>(rng.NextBelow(universe)), t);
  }
  return engine;
}

double ReaderQps(const std::shared_ptr<const ReadSnapshot<Pbe1>>& snap,
                 EventId universe, int threads, size_t queries_per_thread,
                 uint64_t seed) {
  std::atomic<double> sink{0.0};
  Stopwatch sw;
  std::vector<std::thread> pool;
  for (int i = 0; i < threads; ++i) {
    pool.emplace_back([&, i] {
      Rng rng(seed ^ (0x9e37 * (i + 1)));
      const Timestamp w = snap->watermark();
      double local = 0.0;
      for (size_t q = 0; q < queries_per_thread; ++q) {
        const EventId e = static_cast<EventId>(rng.NextBelow(universe));
        const Timestamp t = static_cast<Timestamp>(rng.NextBelow(
            static_cast<uint64_t>(w > 0 ? w : 1)));
        local += snap->Point(e, t, 16).value;
      }
      sink.store(local);  // keep the loop alive
    });
  }
  for (auto& th : pool) th.join();
  const double secs = sw.Seconds();
  return static_cast<double>(threads) * static_cast<double>(queries_per_thread) /
         (secs > 0.0 ? secs : 1e-9);
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg = ParseArgs(argc, argv);
  Banner(cfg, "Serving-path costs: snapshot acquisition and reader scaling",
         "warm acquire ~constant and far below cold; reader throughput "
         "scales near-linearly with threads");

  const EventId universe = 64;
  const size_t base = static_cast<size_t>(2.0e6 * cfg.scale);
  std::printf("%10s %14s %14s %14s %14s\n", "N", "acq cold (us)",
              "acq warm (us)", "point 1thr/s", "point 4thr/s");
  for (size_t n : {base / 4 + 1, base + 1, 4 * base + 1}) {
    BurstEngine<Pbe1> engine = BuildEngine(universe, n, cfg.seed);

    // Cold: every acquisition pays the clone (append invalidates).
    const int kColdReps = 10;
    double cold_us = 0.0;
    Stopwatch sw;
    for (int i = 0; i < kColdReps; ++i) {
      (void)engine.Append(0, engine.Watermark());  // invalidate the cache
      sw.Reset();
      auto snap = engine.AcquireSnapshot();
      cold_us += sw.Micros();
    }
    cold_us /= kColdReps;

    // Warm: cache hit, shared clone.
    const int kWarmReps = 1000;
    sw.Reset();
    for (int i = 0; i < kWarmReps; ++i) (void)engine.AcquireSnapshot();
    const double warm_us = sw.Micros() / kWarmReps;

    auto snap = engine.AcquireSnapshot();
    const size_t queries = 20000;
    const double qps1 = ReaderQps(snap, universe, 1, queries, cfg.seed);
    const double qps4 = ReaderQps(snap, universe, 4, queries, cfg.seed);

    std::printf("%10zu %14.1f %14.3f %14.0f %14.0f\n", n, cold_us, warm_us,
                qps1, qps4);
  }
  Rule();
  MaybeEmitMetrics(cfg);
  return 0;
}
