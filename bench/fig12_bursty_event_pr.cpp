// Figure 12 — bursty-event detection: precision and recall of the
// dyadic CM-PBE index vs total space, on both datasets.
//
// Paper shape: high precision AND recall from small space, recall
// generally above precision (a bursting event is hard to miss, but
// colliding non-bursty events can fabricate a few false positives);
// CM-PBE-1 slightly better than CM-PBE-2; olympicrio better than
// uspolitics.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/dyadic_index.h"
#include "core/exact_store.h"
#include "eval/metrics.h"

using namespace bursthist;
using namespace bursthist::bench;

namespace {

// Thresholds drawn from the range of burstiness values actually
// observed ("we generated a set of burstiness thresholds theta from
// the range of possible burstiness values of the underlying stream").
std::vector<double> PickThetas(const ExactBurstStore& exact,
                               const std::vector<Timestamp>& times,
                               Timestamp tau) {
  Burstiness peak = 0;
  for (Timestamp t : times) {
    for (EventId e = 0; e < exact.universe_size(); ++e) {
      peak = std::max(peak, exact.BurstinessAt(e, t, tau));
    }
  }
  if (peak < 4) peak = 4;
  return {0.1 * peak, 0.25 * peak, 0.5 * peak};
}

template <typename PbeT>
void SweepOne(const char* label, const Dataset& ds,
              const ExactBurstStore& exact,
              const std::vector<typename PbeT::Options>& cells,
              const BenchConfig& cfg) {
  const Timestamp tau = kSecondsPerDay;
  Rng qrng(cfg.seed ^ 0xf12);
  auto times = SampleQueryTimes(tau, ds.stream.MaxTime(), 20, &qrng);
  auto thetas = PickThetas(exact, times, tau);

  std::printf("  %s (paper prune rule | children-only rule):\n", label);
  std::printf("  %12s %11s %8s %9s %11s %8s %9s\n", "space MB", "precision",
              "recall", "pq/query", "precision", "recall", "pq/query");
  for (const auto& cell : cells) {
    CmPbeOptions grid = CmPbeOptions::FromGuarantee(0.05, 0.2, cfg.seed);
    DyadicBurstIndex<PbeT> index(ds.universe_size, grid, cell);
    for (const auto& r : ds.stream.records()) index.Append(r.id, r.time);
    index.Finalize();

    std::printf("  %12.2f", index.SizeBytes() / 1048576.0);
    for (DyadicPruneRule rule :
         {DyadicPruneRule::kPaper, DyadicPruneRule::kChildren}) {
      index.set_prune_rule(rule);
      PrecisionRecallAverage avg;
      size_t point_queries = 0, n_queries = 0;
      for (Timestamp t : times) {
        for (double theta : thetas) {
          auto got = index.BurstyEvents(t, theta, tau);
          auto truth = exact.BurstyEvents(t, theta, tau);
          if (got.empty() && truth.empty()) continue;  // uninformative
          avg.Add(CompareIdSets(got, truth));
          point_queries += index.LastQueryPointQueries();
          ++n_queries;
        }
      }
      std::printf(" %11.3f %8.3f %9.1f", avg.MeanPrecision(),
                  avg.MeanRecall(),
                  n_queries ? static_cast<double>(point_queries) / n_queries
                            : 0.0);
    }
    std::printf("\n");
  }
}

void RunDataset(const Dataset& ds, const BenchConfig& cfg) {
  Rule();
  std::printf("dataset %s: %zu records, K=%u\n", ds.name.c_str(),
              ds.stream.size(), ds.universe_size);
  ExactBurstStore exact(ds.universe_size);
  (void)exact.AppendStream(ds.stream);

  std::vector<Pbe1Options> p1;
  for (size_t eta : {20, 60, 150, 400}) {
    Pbe1Options o;
    o.buffer_points = 1500;
    o.budget_points = eta;
    p1.push_back(o);
  }
  SweepOne<Pbe1>("CM-PBE-1 dyadic index", ds, exact, p1, cfg);

  std::vector<Pbe2Options> p2;
  for (double gamma : {100.0, 30.0, 10.0, 3.0}) {
    Pbe2Options o;
    o.gamma = gamma;
    p2.push_back(o);
  }
  SweepOne<Pbe2>("CM-PBE-2 dyadic index", ds, exact, p2, cfg);
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg = ParseArgs(argc, argv);
  Banner(cfg,
         "Figure 12: bursty-event detection precision/recall vs space",
         "precision/recall rise with space, recall >= precision; CM-PBE-1 "
         ">= CM-PBE-2; olympicrio >= uspolitics");
  RunDataset(MakeOlympicRio(cfg.Scenario()), cfg);
  RunDataset(MakeUsPolitics(cfg.Scenario()), cfg);
  return 0;
}
