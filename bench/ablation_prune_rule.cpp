// Ablation — dyadic-index subtree test (Section V, Algorithm 3).
//
// The paper descends into a subtree iff b_p^2 - 2 b_l b_r >= theta^2,
// estimating b_p from the parent level's CM-PBE. On exact values this
// equals b_l^2 + b_r^2 >= theta^2 — computable from the children
// alone. Under estimation noise the two differ: the parent-level
// estimate adds that level's collision noise to the test and can
// prune subtrees holding genuinely bursty leaves. This table measures
// the recall the paper rule gives up and what it buys (it can also
// prune *more*, trimming false-positive descents).

#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "core/dyadic_index.h"
#include "core/exact_store.h"
#include "eval/metrics.h"

using namespace bursthist;
using namespace bursthist::bench;

int main(int argc, char** argv) {
  BenchConfig cfg = ParseArgs(argc, argv);
  Banner(cfg,
         "Ablation: dyadic pruning rule — paper (parent-based) vs "
         "children-only",
         "identical on exact values; children-only is less noisy under "
         "CM collisions");

  Dataset ds = MakeOlympicRio(cfg.Scenario());
  ExactBurstStore exact(ds.universe_size);
  (void)exact.AppendStream(ds.stream);
  std::printf("dataset %s: %zu records, K=%u\n\n", ds.name.c_str(),
              ds.stream.size(), ds.universe_size);

  Pbe1Options cell;
  cell.buffer_points = 1500;
  cell.budget_points = 120;
  CmPbeOptions grid = CmPbeOptions::FromGuarantee(0.05, 0.2, cfg.seed);
  DyadicBurstIndex<Pbe1> index(ds.universe_size, grid, cell);
  for (const auto& r : ds.stream.records()) index.Append(r.id, r.time);
  index.Finalize();

  const Timestamp tau = kSecondsPerDay;
  Rng qrng(cfg.seed ^ 0xab2);
  auto times = SampleQueryTimes(tau, ds.stream.MaxTime(), 30, &qrng);

  std::printf("%14s %12s %12s %12s %12s\n", "rule", "precision", "recall",
              "F1", "pq/query");
  for (DyadicPruneRule rule :
       {DyadicPruneRule::kPaper, DyadicPruneRule::kChildren}) {
    index.set_prune_rule(rule);
    PrecisionRecallAverage avg;
    double f1 = 0.0;
    size_t pq = 0, n = 0;
    for (Timestamp t : times) {
      Burstiness peak = 0;
      for (EventId e = 0; e < ds.universe_size; ++e) {
        peak = std::max(peak, exact.BurstinessAt(e, t, tau));
      }
      if (peak < 20) continue;
      for (double frac : {0.2, 0.4}) {
        const double theta = frac * static_cast<double>(peak);
        auto got = index.BurstyEvents(t, theta, tau);
        auto truth = exact.BurstyEvents(t, theta, tau);
        if (got.empty() && truth.empty()) continue;
        auto pr = CompareIdSets(got, truth);
        avg.Add(pr);
        f1 += pr.F1();
        pq += index.LastQueryPointQueries();
        ++n;
      }
    }
    std::printf("%14s %12.3f %12.3f %12.3f %12.1f\n",
                rule == DyadicPruneRule::kPaper ? "paper" : "children",
                avg.MeanPrecision(), avg.MeanRecall(),
                n ? f1 / static_cast<double>(n) : 0.0,
                n ? static_cast<double>(pq) / static_cast<double>(n) : 0.0);
  }
  return 0;
}
