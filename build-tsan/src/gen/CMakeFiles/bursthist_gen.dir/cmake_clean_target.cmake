file(REMOVE_RECURSE
  "libbursthist_gen.a"
)
