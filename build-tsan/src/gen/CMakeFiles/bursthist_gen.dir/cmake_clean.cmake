file(REMOVE_RECURSE
  "CMakeFiles/bursthist_gen.dir/message_gen.cc.o"
  "CMakeFiles/bursthist_gen.dir/message_gen.cc.o.d"
  "CMakeFiles/bursthist_gen.dir/rate_curve.cc.o"
  "CMakeFiles/bursthist_gen.dir/rate_curve.cc.o.d"
  "CMakeFiles/bursthist_gen.dir/scenarios.cc.o"
  "CMakeFiles/bursthist_gen.dir/scenarios.cc.o.d"
  "libbursthist_gen.a"
  "libbursthist_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bursthist_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
