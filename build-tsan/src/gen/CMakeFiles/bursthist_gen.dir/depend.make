# Empty dependencies file for bursthist_gen.
# This may be replaced when dependencies are built.
