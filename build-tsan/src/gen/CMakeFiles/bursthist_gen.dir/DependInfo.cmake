
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/message_gen.cc" "src/gen/CMakeFiles/bursthist_gen.dir/message_gen.cc.o" "gcc" "src/gen/CMakeFiles/bursthist_gen.dir/message_gen.cc.o.d"
  "/root/repo/src/gen/rate_curve.cc" "src/gen/CMakeFiles/bursthist_gen.dir/rate_curve.cc.o" "gcc" "src/gen/CMakeFiles/bursthist_gen.dir/rate_curve.cc.o.d"
  "/root/repo/src/gen/scenarios.cc" "src/gen/CMakeFiles/bursthist_gen.dir/scenarios.cc.o" "gcc" "src/gen/CMakeFiles/bursthist_gen.dir/scenarios.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/bursthist_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/stream/CMakeFiles/bursthist_stream.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/hash/CMakeFiles/bursthist_hash.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
