# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-tsan/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("hash")
subdirs("stream")
subdirs("geom")
subdirs("pla")
subdirs("sketch")
subdirs("core")
subdirs("baselines")
subdirs("gen")
subdirs("eval")
