
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stream/csv_io.cc" "src/stream/CMakeFiles/bursthist_stream.dir/csv_io.cc.o" "gcc" "src/stream/CMakeFiles/bursthist_stream.dir/csv_io.cc.o.d"
  "/root/repo/src/stream/event_stream.cc" "src/stream/CMakeFiles/bursthist_stream.dir/event_stream.cc.o" "gcc" "src/stream/CMakeFiles/bursthist_stream.dir/event_stream.cc.o.d"
  "/root/repo/src/stream/frequency_curve.cc" "src/stream/CMakeFiles/bursthist_stream.dir/frequency_curve.cc.o" "gcc" "src/stream/CMakeFiles/bursthist_stream.dir/frequency_curve.cc.o.d"
  "/root/repo/src/stream/text_pipeline.cc" "src/stream/CMakeFiles/bursthist_stream.dir/text_pipeline.cc.o" "gcc" "src/stream/CMakeFiles/bursthist_stream.dir/text_pipeline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/bursthist_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/hash/CMakeFiles/bursthist_hash.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
