file(REMOVE_RECURSE
  "CMakeFiles/bursthist_stream.dir/csv_io.cc.o"
  "CMakeFiles/bursthist_stream.dir/csv_io.cc.o.d"
  "CMakeFiles/bursthist_stream.dir/event_stream.cc.o"
  "CMakeFiles/bursthist_stream.dir/event_stream.cc.o.d"
  "CMakeFiles/bursthist_stream.dir/frequency_curve.cc.o"
  "CMakeFiles/bursthist_stream.dir/frequency_curve.cc.o.d"
  "CMakeFiles/bursthist_stream.dir/text_pipeline.cc.o"
  "CMakeFiles/bursthist_stream.dir/text_pipeline.cc.o.d"
  "libbursthist_stream.a"
  "libbursthist_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bursthist_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
