file(REMOVE_RECURSE
  "libbursthist_stream.a"
)
