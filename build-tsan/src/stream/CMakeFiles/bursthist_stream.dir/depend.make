# Empty dependencies file for bursthist_stream.
# This may be replaced when dependencies are built.
