file(REMOVE_RECURSE
  "CMakeFiles/bursthist_sketch.dir/count_min.cc.o"
  "CMakeFiles/bursthist_sketch.dir/count_min.cc.o.d"
  "CMakeFiles/bursthist_sketch.dir/snapshot_cm.cc.o"
  "CMakeFiles/bursthist_sketch.dir/snapshot_cm.cc.o.d"
  "CMakeFiles/bursthist_sketch.dir/space_saving.cc.o"
  "CMakeFiles/bursthist_sketch.dir/space_saving.cc.o.d"
  "libbursthist_sketch.a"
  "libbursthist_sketch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bursthist_sketch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
