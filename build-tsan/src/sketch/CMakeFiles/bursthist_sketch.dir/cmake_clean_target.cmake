file(REMOVE_RECURSE
  "libbursthist_sketch.a"
)
