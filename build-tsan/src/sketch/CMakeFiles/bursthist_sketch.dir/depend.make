# Empty dependencies file for bursthist_sketch.
# This may be replaced when dependencies are built.
