
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sketch/count_min.cc" "src/sketch/CMakeFiles/bursthist_sketch.dir/count_min.cc.o" "gcc" "src/sketch/CMakeFiles/bursthist_sketch.dir/count_min.cc.o.d"
  "/root/repo/src/sketch/snapshot_cm.cc" "src/sketch/CMakeFiles/bursthist_sketch.dir/snapshot_cm.cc.o" "gcc" "src/sketch/CMakeFiles/bursthist_sketch.dir/snapshot_cm.cc.o.d"
  "/root/repo/src/sketch/space_saving.cc" "src/sketch/CMakeFiles/bursthist_sketch.dir/space_saving.cc.o" "gcc" "src/sketch/CMakeFiles/bursthist_sketch.dir/space_saving.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/bursthist_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/hash/CMakeFiles/bursthist_hash.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
