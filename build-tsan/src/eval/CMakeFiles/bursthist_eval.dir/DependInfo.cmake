
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/intervals.cc" "src/eval/CMakeFiles/bursthist_eval.dir/intervals.cc.o" "gcc" "src/eval/CMakeFiles/bursthist_eval.dir/intervals.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "src/eval/CMakeFiles/bursthist_eval.dir/metrics.cc.o" "gcc" "src/eval/CMakeFiles/bursthist_eval.dir/metrics.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/bursthist_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/stream/CMakeFiles/bursthist_stream.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/core/CMakeFiles/bursthist_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/pla/CMakeFiles/bursthist_pla.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/geom/CMakeFiles/bursthist_geom.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sketch/CMakeFiles/bursthist_sketch.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/hash/CMakeFiles/bursthist_hash.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
