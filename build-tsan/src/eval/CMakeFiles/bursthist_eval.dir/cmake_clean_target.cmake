file(REMOVE_RECURSE
  "libbursthist_eval.a"
)
