file(REMOVE_RECURSE
  "CMakeFiles/bursthist_eval.dir/intervals.cc.o"
  "CMakeFiles/bursthist_eval.dir/intervals.cc.o.d"
  "CMakeFiles/bursthist_eval.dir/metrics.cc.o"
  "CMakeFiles/bursthist_eval.dir/metrics.cc.o.d"
  "libbursthist_eval.a"
  "libbursthist_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bursthist_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
