# Empty dependencies file for bursthist_eval.
# This may be replaced when dependencies are built.
