file(REMOVE_RECURSE
  "CMakeFiles/bursthist_core.dir/burstiness_index.cc.o"
  "CMakeFiles/bursthist_core.dir/burstiness_index.cc.o.d"
  "CMakeFiles/bursthist_core.dir/exact_store.cc.o"
  "CMakeFiles/bursthist_core.dir/exact_store.cc.o.d"
  "CMakeFiles/bursthist_core.dir/pbe1.cc.o"
  "CMakeFiles/bursthist_core.dir/pbe1.cc.o.d"
  "CMakeFiles/bursthist_core.dir/pbe2.cc.o"
  "CMakeFiles/bursthist_core.dir/pbe2.cc.o.d"
  "CMakeFiles/bursthist_core.dir/sketch_store.cc.o"
  "CMakeFiles/bursthist_core.dir/sketch_store.cc.o.d"
  "libbursthist_core.a"
  "libbursthist_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bursthist_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
