# Empty dependencies file for bursthist_core.
# This may be replaced when dependencies are built.
