file(REMOVE_RECURSE
  "libbursthist_core.a"
)
