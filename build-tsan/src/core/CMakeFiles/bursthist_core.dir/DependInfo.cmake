
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/burstiness_index.cc" "src/core/CMakeFiles/bursthist_core.dir/burstiness_index.cc.o" "gcc" "src/core/CMakeFiles/bursthist_core.dir/burstiness_index.cc.o.d"
  "/root/repo/src/core/exact_store.cc" "src/core/CMakeFiles/bursthist_core.dir/exact_store.cc.o" "gcc" "src/core/CMakeFiles/bursthist_core.dir/exact_store.cc.o.d"
  "/root/repo/src/core/pbe1.cc" "src/core/CMakeFiles/bursthist_core.dir/pbe1.cc.o" "gcc" "src/core/CMakeFiles/bursthist_core.dir/pbe1.cc.o.d"
  "/root/repo/src/core/pbe2.cc" "src/core/CMakeFiles/bursthist_core.dir/pbe2.cc.o" "gcc" "src/core/CMakeFiles/bursthist_core.dir/pbe2.cc.o.d"
  "/root/repo/src/core/sketch_store.cc" "src/core/CMakeFiles/bursthist_core.dir/sketch_store.cc.o" "gcc" "src/core/CMakeFiles/bursthist_core.dir/sketch_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/bursthist_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/hash/CMakeFiles/bursthist_hash.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/stream/CMakeFiles/bursthist_stream.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/pla/CMakeFiles/bursthist_pla.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sketch/CMakeFiles/bursthist_sketch.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/geom/CMakeFiles/bursthist_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
