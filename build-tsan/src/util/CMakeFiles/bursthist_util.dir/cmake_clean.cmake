file(REMOVE_RECURSE
  "CMakeFiles/bursthist_util.dir/random.cc.o"
  "CMakeFiles/bursthist_util.dir/random.cc.o.d"
  "CMakeFiles/bursthist_util.dir/serialize.cc.o"
  "CMakeFiles/bursthist_util.dir/serialize.cc.o.d"
  "CMakeFiles/bursthist_util.dir/status.cc.o"
  "CMakeFiles/bursthist_util.dir/status.cc.o.d"
  "libbursthist_util.a"
  "libbursthist_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bursthist_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
