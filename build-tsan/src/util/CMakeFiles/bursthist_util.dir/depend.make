# Empty dependencies file for bursthist_util.
# This may be replaced when dependencies are built.
