file(REMOVE_RECURSE
  "libbursthist_util.a"
)
