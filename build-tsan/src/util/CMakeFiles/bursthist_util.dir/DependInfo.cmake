
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/random.cc" "src/util/CMakeFiles/bursthist_util.dir/random.cc.o" "gcc" "src/util/CMakeFiles/bursthist_util.dir/random.cc.o.d"
  "/root/repo/src/util/serialize.cc" "src/util/CMakeFiles/bursthist_util.dir/serialize.cc.o" "gcc" "src/util/CMakeFiles/bursthist_util.dir/serialize.cc.o.d"
  "/root/repo/src/util/status.cc" "src/util/CMakeFiles/bursthist_util.dir/status.cc.o" "gcc" "src/util/CMakeFiles/bursthist_util.dir/status.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
