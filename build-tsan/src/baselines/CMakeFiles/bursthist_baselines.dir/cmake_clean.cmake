file(REMOVE_RECURSE
  "CMakeFiles/bursthist_baselines.dir/kleinberg.cc.o"
  "CMakeFiles/bursthist_baselines.dir/kleinberg.cc.o.d"
  "CMakeFiles/bursthist_baselines.dir/macd.cc.o"
  "CMakeFiles/bursthist_baselines.dir/macd.cc.o.d"
  "CMakeFiles/bursthist_baselines.dir/window_burst.cc.o"
  "CMakeFiles/bursthist_baselines.dir/window_burst.cc.o.d"
  "libbursthist_baselines.a"
  "libbursthist_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bursthist_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
