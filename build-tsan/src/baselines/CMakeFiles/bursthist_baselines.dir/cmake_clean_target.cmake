file(REMOVE_RECURSE
  "libbursthist_baselines.a"
)
