# Empty dependencies file for bursthist_baselines.
# This may be replaced when dependencies are built.
