# Empty dependencies file for bursthist_pla.
# This may be replaced when dependencies are built.
