
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pla/linear_model.cc" "src/pla/CMakeFiles/bursthist_pla.dir/linear_model.cc.o" "gcc" "src/pla/CMakeFiles/bursthist_pla.dir/linear_model.cc.o.d"
  "/root/repo/src/pla/online_pla.cc" "src/pla/CMakeFiles/bursthist_pla.dir/online_pla.cc.o" "gcc" "src/pla/CMakeFiles/bursthist_pla.dir/online_pla.cc.o.d"
  "/root/repo/src/pla/optimal_staircase.cc" "src/pla/CMakeFiles/bursthist_pla.dir/optimal_staircase.cc.o" "gcc" "src/pla/CMakeFiles/bursthist_pla.dir/optimal_staircase.cc.o.d"
  "/root/repo/src/pla/staircase_model.cc" "src/pla/CMakeFiles/bursthist_pla.dir/staircase_model.cc.o" "gcc" "src/pla/CMakeFiles/bursthist_pla.dir/staircase_model.cc.o.d"
  "/root/repo/src/pla/uniform_staircase.cc" "src/pla/CMakeFiles/bursthist_pla.dir/uniform_staircase.cc.o" "gcc" "src/pla/CMakeFiles/bursthist_pla.dir/uniform_staircase.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/bursthist_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/stream/CMakeFiles/bursthist_stream.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/geom/CMakeFiles/bursthist_geom.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/hash/CMakeFiles/bursthist_hash.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
