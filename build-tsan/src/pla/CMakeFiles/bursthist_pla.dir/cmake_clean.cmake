file(REMOVE_RECURSE
  "CMakeFiles/bursthist_pla.dir/linear_model.cc.o"
  "CMakeFiles/bursthist_pla.dir/linear_model.cc.o.d"
  "CMakeFiles/bursthist_pla.dir/online_pla.cc.o"
  "CMakeFiles/bursthist_pla.dir/online_pla.cc.o.d"
  "CMakeFiles/bursthist_pla.dir/optimal_staircase.cc.o"
  "CMakeFiles/bursthist_pla.dir/optimal_staircase.cc.o.d"
  "CMakeFiles/bursthist_pla.dir/staircase_model.cc.o"
  "CMakeFiles/bursthist_pla.dir/staircase_model.cc.o.d"
  "CMakeFiles/bursthist_pla.dir/uniform_staircase.cc.o"
  "CMakeFiles/bursthist_pla.dir/uniform_staircase.cc.o.d"
  "libbursthist_pla.a"
  "libbursthist_pla.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bursthist_pla.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
