file(REMOVE_RECURSE
  "libbursthist_pla.a"
)
