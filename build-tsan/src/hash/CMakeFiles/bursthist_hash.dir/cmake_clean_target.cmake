file(REMOVE_RECURSE
  "libbursthist_hash.a"
)
