file(REMOVE_RECURSE
  "CMakeFiles/bursthist_hash.dir/hash.cc.o"
  "CMakeFiles/bursthist_hash.dir/hash.cc.o.d"
  "libbursthist_hash.a"
  "libbursthist_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bursthist_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
