# Empty dependencies file for bursthist_hash.
# This may be replaced when dependencies are built.
