# Empty dependencies file for bursthist_geom.
# This may be replaced when dependencies are built.
