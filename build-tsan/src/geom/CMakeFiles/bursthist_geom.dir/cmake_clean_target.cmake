file(REMOVE_RECURSE
  "libbursthist_geom.a"
)
