file(REMOVE_RECURSE
  "CMakeFiles/bursthist_geom.dir/convex_polygon.cc.o"
  "CMakeFiles/bursthist_geom.dir/convex_polygon.cc.o.d"
  "libbursthist_geom.a"
  "libbursthist_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bursthist_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
