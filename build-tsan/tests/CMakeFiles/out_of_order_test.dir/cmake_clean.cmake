file(REMOVE_RECURSE
  "CMakeFiles/out_of_order_test.dir/out_of_order_test.cpp.o"
  "CMakeFiles/out_of_order_test.dir/out_of_order_test.cpp.o.d"
  "out_of_order_test"
  "out_of_order_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/out_of_order_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
