# Empty dependencies file for out_of_order_test.
# This may be replaced when dependencies are built.
