# Empty compiler generated dependencies file for burstiness_index_test.
# This may be replaced when dependencies are built.
