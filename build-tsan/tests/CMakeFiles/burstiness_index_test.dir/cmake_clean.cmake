file(REMOVE_RECURSE
  "CMakeFiles/burstiness_index_test.dir/burstiness_index_test.cpp.o"
  "CMakeFiles/burstiness_index_test.dir/burstiness_index_test.cpp.o.d"
  "burstiness_index_test"
  "burstiness_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/burstiness_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
