# Empty dependencies file for optimal_staircase_test.
# This may be replaced when dependencies are built.
