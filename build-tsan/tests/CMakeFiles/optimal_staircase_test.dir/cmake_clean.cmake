file(REMOVE_RECURSE
  "CMakeFiles/optimal_staircase_test.dir/optimal_staircase_test.cpp.o"
  "CMakeFiles/optimal_staircase_test.dir/optimal_staircase_test.cpp.o.d"
  "optimal_staircase_test"
  "optimal_staircase_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimal_staircase_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
