file(REMOVE_RECURSE
  "CMakeFiles/geom_test.dir/geom_test.cpp.o"
  "CMakeFiles/geom_test.dir/geom_test.cpp.o.d"
  "geom_test"
  "geom_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geom_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
