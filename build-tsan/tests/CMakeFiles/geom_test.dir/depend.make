# Empty dependencies file for geom_test.
# This may be replaced when dependencies are built.
