# Empty compiler generated dependencies file for dyadic_test.
# This may be replaced when dependencies are built.
