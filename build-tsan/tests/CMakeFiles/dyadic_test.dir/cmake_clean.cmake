file(REMOVE_RECURSE
  "CMakeFiles/dyadic_test.dir/dyadic_test.cpp.o"
  "CMakeFiles/dyadic_test.dir/dyadic_test.cpp.o.d"
  "dyadic_test"
  "dyadic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dyadic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
