# Empty dependencies file for topk_query_test.
# This may be replaced when dependencies are built.
