
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/topk_query_test.cpp" "tests/CMakeFiles/topk_query_test.dir/topk_query_test.cpp.o" "gcc" "tests/CMakeFiles/topk_query_test.dir/topk_query_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/core/CMakeFiles/bursthist_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/gen/CMakeFiles/bursthist_gen.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/eval/CMakeFiles/bursthist_eval.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/baselines/CMakeFiles/bursthist_baselines.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/pla/CMakeFiles/bursthist_pla.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/geom/CMakeFiles/bursthist_geom.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sketch/CMakeFiles/bursthist_sketch.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/stream/CMakeFiles/bursthist_stream.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/hash/CMakeFiles/bursthist_hash.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/bursthist_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
