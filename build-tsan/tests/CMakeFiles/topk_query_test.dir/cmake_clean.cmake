file(REMOVE_RECURSE
  "CMakeFiles/topk_query_test.dir/topk_query_test.cpp.o"
  "CMakeFiles/topk_query_test.dir/topk_query_test.cpp.o.d"
  "topk_query_test"
  "topk_query_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topk_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
