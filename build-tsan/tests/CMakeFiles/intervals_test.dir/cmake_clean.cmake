file(REMOVE_RECURSE
  "CMakeFiles/intervals_test.dir/intervals_test.cpp.o"
  "CMakeFiles/intervals_test.dir/intervals_test.cpp.o.d"
  "intervals_test"
  "intervals_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intervals_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
