# Empty compiler generated dependencies file for intervals_test.
# This may be replaced when dependencies are built.
