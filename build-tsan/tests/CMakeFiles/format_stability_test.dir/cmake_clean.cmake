file(REMOVE_RECURSE
  "CMakeFiles/format_stability_test.dir/format_stability_test.cpp.o"
  "CMakeFiles/format_stability_test.dir/format_stability_test.cpp.o.d"
  "format_stability_test"
  "format_stability_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/format_stability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
