# Empty dependencies file for format_stability_test.
# This may be replaced when dependencies are built.
