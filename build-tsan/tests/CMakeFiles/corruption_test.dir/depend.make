# Empty dependencies file for corruption_test.
# This may be replaced when dependencies are built.
