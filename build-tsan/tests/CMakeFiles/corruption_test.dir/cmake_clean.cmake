file(REMOVE_RECURSE
  "CMakeFiles/corruption_test.dir/corruption_test.cpp.o"
  "CMakeFiles/corruption_test.dir/corruption_test.cpp.o.d"
  "corruption_test"
  "corruption_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corruption_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
