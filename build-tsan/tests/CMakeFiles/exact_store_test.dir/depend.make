# Empty dependencies file for exact_store_test.
# This may be replaced when dependencies are built.
