file(REMOVE_RECURSE
  "CMakeFiles/exact_store_test.dir/exact_store_test.cpp.o"
  "CMakeFiles/exact_store_test.dir/exact_store_test.cpp.o.d"
  "exact_store_test"
  "exact_store_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exact_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
