file(REMOVE_RECURSE
  "CMakeFiles/burst_queries_sweep_test.dir/burst_queries_sweep_test.cpp.o"
  "CMakeFiles/burst_queries_sweep_test.dir/burst_queries_sweep_test.cpp.o.d"
  "burst_queries_sweep_test"
  "burst_queries_sweep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/burst_queries_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
