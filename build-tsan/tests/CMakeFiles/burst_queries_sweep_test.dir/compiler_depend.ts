# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for burst_queries_sweep_test.
