file(REMOVE_RECURSE
  "CMakeFiles/parallel_ingest_test.dir/parallel_ingest_test.cpp.o"
  "CMakeFiles/parallel_ingest_test.dir/parallel_ingest_test.cpp.o.d"
  "parallel_ingest_test"
  "parallel_ingest_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_ingest_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
