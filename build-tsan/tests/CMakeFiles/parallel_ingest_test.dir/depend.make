# Empty dependencies file for parallel_ingest_test.
# This may be replaced when dependencies are built.
