# Empty compiler generated dependencies file for cm_pbe_sweep_test.
# This may be replaced when dependencies are built.
