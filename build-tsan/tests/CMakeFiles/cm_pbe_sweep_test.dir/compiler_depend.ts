# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for cm_pbe_sweep_test.
