file(REMOVE_RECURSE
  "CMakeFiles/cm_pbe_sweep_test.dir/cm_pbe_sweep_test.cpp.o"
  "CMakeFiles/cm_pbe_sweep_test.dir/cm_pbe_sweep_test.cpp.o.d"
  "cm_pbe_sweep_test"
  "cm_pbe_sweep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cm_pbe_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
