# Empty dependencies file for uniform_staircase_test.
# This may be replaced when dependencies are built.
