file(REMOVE_RECURSE
  "CMakeFiles/uniform_staircase_test.dir/uniform_staircase_test.cpp.o"
  "CMakeFiles/uniform_staircase_test.dir/uniform_staircase_test.cpp.o.d"
  "uniform_staircase_test"
  "uniform_staircase_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uniform_staircase_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
