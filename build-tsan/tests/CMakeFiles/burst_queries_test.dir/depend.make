# Empty dependencies file for burst_queries_test.
# This may be replaced when dependencies are built.
