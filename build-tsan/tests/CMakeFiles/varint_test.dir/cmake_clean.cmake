file(REMOVE_RECURSE
  "CMakeFiles/varint_test.dir/varint_test.cpp.o"
  "CMakeFiles/varint_test.dir/varint_test.cpp.o.d"
  "varint_test"
  "varint_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/varint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
