# Empty dependencies file for varint_test.
# This may be replaced when dependencies are built.
