file(REMOVE_RECURSE
  "CMakeFiles/csv_io_test.dir/csv_io_test.cpp.o"
  "CMakeFiles/csv_io_test.dir/csv_io_test.cpp.o.d"
  "csv_io_test"
  "csv_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csv_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
