# Empty compiler generated dependencies file for csv_io_test.
# This may be replaced when dependencies are built.
