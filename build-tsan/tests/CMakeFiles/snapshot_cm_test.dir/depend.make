# Empty dependencies file for snapshot_cm_test.
# This may be replaced when dependencies are built.
