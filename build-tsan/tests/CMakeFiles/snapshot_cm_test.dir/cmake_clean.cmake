file(REMOVE_RECURSE
  "CMakeFiles/snapshot_cm_test.dir/snapshot_cm_test.cpp.o"
  "CMakeFiles/snapshot_cm_test.dir/snapshot_cm_test.cpp.o.d"
  "snapshot_cm_test"
  "snapshot_cm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snapshot_cm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
