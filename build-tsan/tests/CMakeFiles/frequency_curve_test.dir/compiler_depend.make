# Empty compiler generated dependencies file for frequency_curve_test.
# This may be replaced when dependencies are built.
