file(REMOVE_RECURSE
  "CMakeFiles/frequency_curve_test.dir/frequency_curve_test.cpp.o"
  "CMakeFiles/frequency_curve_test.dir/frequency_curve_test.cpp.o.d"
  "frequency_curve_test"
  "frequency_curve_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frequency_curve_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
