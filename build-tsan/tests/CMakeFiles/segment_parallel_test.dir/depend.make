# Empty dependencies file for segment_parallel_test.
# This may be replaced when dependencies are built.
