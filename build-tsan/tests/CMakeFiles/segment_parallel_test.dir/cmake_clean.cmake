file(REMOVE_RECURSE
  "CMakeFiles/segment_parallel_test.dir/segment_parallel_test.cpp.o"
  "CMakeFiles/segment_parallel_test.dir/segment_parallel_test.cpp.o.d"
  "segment_parallel_test"
  "segment_parallel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/segment_parallel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
