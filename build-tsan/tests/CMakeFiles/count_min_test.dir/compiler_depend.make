# Empty compiler generated dependencies file for count_min_test.
# This may be replaced when dependencies are built.
