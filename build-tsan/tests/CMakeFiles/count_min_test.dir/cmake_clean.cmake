file(REMOVE_RECURSE
  "CMakeFiles/count_min_test.dir/count_min_test.cpp.o"
  "CMakeFiles/count_min_test.dir/count_min_test.cpp.o.d"
  "count_min_test"
  "count_min_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/count_min_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
