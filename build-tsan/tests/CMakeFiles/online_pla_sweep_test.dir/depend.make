# Empty dependencies file for online_pla_sweep_test.
# This may be replaced when dependencies are built.
