file(REMOVE_RECURSE
  "CMakeFiles/online_pla_sweep_test.dir/online_pla_sweep_test.cpp.o"
  "CMakeFiles/online_pla_sweep_test.dir/online_pla_sweep_test.cpp.o.d"
  "online_pla_sweep_test"
  "online_pla_sweep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_pla_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
