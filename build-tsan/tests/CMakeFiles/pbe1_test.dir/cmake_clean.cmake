file(REMOVE_RECURSE
  "CMakeFiles/pbe1_test.dir/pbe1_test.cpp.o"
  "CMakeFiles/pbe1_test.dir/pbe1_test.cpp.o.d"
  "pbe1_test"
  "pbe1_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbe1_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
