# Empty compiler generated dependencies file for pbe1_test.
# This may be replaced when dependencies are built.
