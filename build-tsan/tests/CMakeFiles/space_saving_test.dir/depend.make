# Empty dependencies file for space_saving_test.
# This may be replaced when dependencies are built.
