file(REMOVE_RECURSE
  "CMakeFiles/space_saving_test.dir/space_saving_test.cpp.o"
  "CMakeFiles/space_saving_test.dir/space_saving_test.cpp.o.d"
  "space_saving_test"
  "space_saving_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/space_saving_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
