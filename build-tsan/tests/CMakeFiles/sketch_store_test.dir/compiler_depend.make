# Empty compiler generated dependencies file for sketch_store_test.
# This may be replaced when dependencies are built.
