file(REMOVE_RECURSE
  "CMakeFiles/sketch_store_test.dir/sketch_store_test.cpp.o"
  "CMakeFiles/sketch_store_test.dir/sketch_store_test.cpp.o.d"
  "sketch_store_test"
  "sketch_store_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sketch_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
