# Empty compiler generated dependencies file for burst_engine_test.
# This may be replaced when dependencies are built.
