file(REMOVE_RECURSE
  "CMakeFiles/burst_engine_test.dir/burst_engine_test.cpp.o"
  "CMakeFiles/burst_engine_test.dir/burst_engine_test.cpp.o.d"
  "burst_engine_test"
  "burst_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/burst_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
