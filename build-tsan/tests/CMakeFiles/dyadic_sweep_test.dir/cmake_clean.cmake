file(REMOVE_RECURSE
  "CMakeFiles/dyadic_sweep_test.dir/dyadic_sweep_test.cpp.o"
  "CMakeFiles/dyadic_sweep_test.dir/dyadic_sweep_test.cpp.o.d"
  "dyadic_sweep_test"
  "dyadic_sweep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dyadic_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
