# Empty dependencies file for dyadic_sweep_test.
# This may be replaced when dependencies are built.
