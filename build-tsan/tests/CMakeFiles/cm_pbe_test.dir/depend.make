# Empty dependencies file for cm_pbe_test.
# This may be replaced when dependencies are built.
