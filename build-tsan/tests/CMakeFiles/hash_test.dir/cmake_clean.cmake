file(REMOVE_RECURSE
  "CMakeFiles/hash_test.dir/hash_test.cpp.o"
  "CMakeFiles/hash_test.dir/hash_test.cpp.o.d"
  "hash_test"
  "hash_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
