file(REMOVE_RECURSE
  "CMakeFiles/pbe2_test.dir/pbe2_test.cpp.o"
  "CMakeFiles/pbe2_test.dir/pbe2_test.cpp.o.d"
  "pbe2_test"
  "pbe2_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbe2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
