# Empty compiler generated dependencies file for pbe2_test.
# This may be replaced when dependencies are built.
