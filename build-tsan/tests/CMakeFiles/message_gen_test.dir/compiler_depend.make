# Empty compiler generated dependencies file for message_gen_test.
# This may be replaced when dependencies are built.
