# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for message_gen_test.
