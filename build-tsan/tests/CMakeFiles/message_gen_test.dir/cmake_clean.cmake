file(REMOVE_RECURSE
  "CMakeFiles/message_gen_test.dir/message_gen_test.cpp.o"
  "CMakeFiles/message_gen_test.dir/message_gen_test.cpp.o.d"
  "message_gen_test"
  "message_gen_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/message_gen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
