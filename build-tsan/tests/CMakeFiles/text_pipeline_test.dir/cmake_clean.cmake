file(REMOVE_RECURSE
  "CMakeFiles/text_pipeline_test.dir/text_pipeline_test.cpp.o"
  "CMakeFiles/text_pipeline_test.dir/text_pipeline_test.cpp.o.d"
  "text_pipeline_test"
  "text_pipeline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
