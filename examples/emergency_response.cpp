// emergency_response: the paper's retrospective-analysis scenario.
//
// "In order to understand how a city's emergency network had
//  responded, operated, and coordinated under an emergency event
//  (e.g., a fire breakout, a major accident), we would like to
//  identify such bursty events in the past and trace how they have
//  developed over time."  (Section I)
//
// We simulate a month of a city's incident-mention feed (fire /
// accident / flooding / power-outage channels plus ambient noise),
// keep only PBE-2 sketches (online, no buffering — suitable for a feed
// that can never be replayed), and then run the retrospective
// analysis: find the emergency, locate its burst window with a BURSTY
// TIME query, and trace the incoming rate through the window.

#include <cstdio>
#include <vector>

#include "core/burst_queries.h"
#include "core/pbe2.h"
#include "gen/rate_curve.h"
#include "gen/scenarios.h"

using namespace bursthist;

namespace {

struct Channel {
  const char* name;
  SingleEventStream stream;
  Pbe2 sketch;
};

}  // namespace

int main() {
  const Timestamp kHorizon = 30 * kSecondsPerDay;
  Rng rng(20160817);

  // --- Simulate the feeds -------------------------------------------
  // Ambient report rates per channel; the fire channel gets a sharp
  // emergency on day 17 (rapid ramp, long coordinated response tail),
  // the accident channel a smaller incident on day 9.
  std::vector<Channel> channels;
  auto add_channel = [&](const char* name, RateCurve curve) {
    Rng stream_rng = rng.Fork(channels.size() + 1);
    Pbe2Options opt;
    opt.gamma = 4.0;
    Channel ch{name, curve.Sample(&stream_rng), Pbe2(opt)};
    for (Timestamp t : ch.stream.times()) ch.sketch.Append(t);
    ch.sketch.Finalize();
    channels.push_back(std::move(ch));
  };

  {
    RateCurve fire;
    fire.AddConstant(0, kHorizon, 0.002);
    // Day 17, 14:00: fire breaks out; mentions explode within minutes,
    // response coordination keeps the channel hot for ~12 hours.
    const Timestamp t0 = 17 * kSecondsPerDay + 14 * 3600;
    fire.AddBurst(t0, t0 + 15 * 60, t0 + 2 * 3600, t0 + 12 * 3600, 1.5);
    add_channel("fire", fire);
  }
  {
    RateCurve accident;
    accident.AddConstant(0, kHorizon, 0.004);
    const Timestamp t0 = 9 * kSecondsPerDay + 8 * 3600;
    accident.AddBurst(t0, t0 + 30 * 60, t0 + 1 * 3600, t0 + 4 * 3600, 0.4);
    add_channel("accident", accident);
  }
  {
    RateCurve flooding;
    flooding.AddConstant(0, kHorizon, 0.003);
    add_channel("flooding", flooding);
  }
  {
    RateCurve outage;
    outage.AddConstant(0, kHorizon, 0.005);
    add_channel("power-outage", outage);
  }

  std::printf("channel sketches (PBE-2, gamma=4):\n");
  for (const auto& ch : channels) {
    std::printf("  %-13s %7zu reports -> %6.1f KB exact, %5.2f KB sketch "
                "(%zu segments)\n",
                ch.name, ch.stream.size(), ch.stream.SizeBytes() / 1024.0,
                ch.sketch.SizeBytes() / 1024.0, ch.sketch.SegmentCount());
  }

  // --- Retrospective: which channel had an emergency, and when? -----
  const Timestamp tau = 3600;  // burst span: one hour
  const double theta = 100.0;
  std::printf("\nBURSTY TIME queries (theta=%.0f, tau=1h):\n", theta);
  for (const auto& ch : channels) {
    auto intervals = BurstyTimes(ch.sketch, theta, tau);
    if (intervals.empty()) {
      std::printf("  %-13s no burst in the whole month\n", ch.name);
      continue;
    }
    for (const auto& iv : intervals) {
      std::printf("  %-13s burst day %.2f %02d:%02d .. day %.2f\n", ch.name,
                  static_cast<double>(iv.begin) / kSecondsPerDay,
                  static_cast<int>((iv.begin % kSecondsPerDay) / 3600),
                  static_cast<int>((iv.begin % 3600) / 60),
                  static_cast<double>(iv.end) / kSecondsPerDay);
    }
  }

  // --- Trace the fire's development hour by hour --------------------
  const Channel& fire = channels[0];
  auto fire_bursts = BurstyTimes(fire.sketch, theta, tau);
  if (!fire_bursts.empty()) {
    const Timestamp onset = fire_bursts.front().begin;
    std::printf("\nfire timeline (hourly incoming rate around onset):\n");
    for (int h = -2; h <= 12; ++h) {
      const Timestamp t = onset + h * 3600;
      const double rate = fire.sketch.EstimateCumulative(t) -
                          fire.sketch.EstimateCumulative(t - 3600);
      const double accel = fire.sketch.EstimateBurstiness(t, tau);
      std::printf("  t%+3dh  rate~ %7.0f /h   burstiness~ %8.0f%s\n", h,
                  rate, accel, accel >= theta ? "  <-- bursting" : "");
    }
  }
  return 0;
}
