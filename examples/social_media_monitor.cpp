// social_media_monitor: the paper's motivating workload — a mixed
// social-media event stream summarized once, then explored with
// historical questions:
//
//   "What were the bursty events in the first week of October?"
//   "Was <event> bursty in the second week of September?"
//
// The monitor ingests a uspolitics-style stream (1,689 event ids over
// 183 days), keeps only a CM-PBE-backed dyadic index (a few MB instead
// of the raw stream), and answers both question types, cross-checked
// against the exact baseline.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/burst_queries.h"
#include "core/dyadic_index.h"
#include "core/exact_store.h"
#include "eval/metrics.h"
#include "gen/scenarios.h"

using namespace bursthist;

namespace {

void PrintHeader(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

}  // namespace

int main() {
  // June 1 is day 0 of the stream; the horizon is 183 days.
  ScenarioConfig cfg;
  cfg.scale = 0.01;  // ~50k tweets: fast demo, same shape
  Dataset ds = MakeUsPolitics(cfg);
  std::printf("ingesting %zu records over %u event ids...\n",
              ds.stream.size(), ds.universe_size);

  // The succinct structure we keep.
  Pbe1Options cell;
  cell.buffer_points = 512;
  cell.budget_points = 96;
  CmPbeOptions grid = CmPbeOptions::FromGuarantee(0.05, 0.2);
  DyadicBurstIndex<Pbe1> index(ds.universe_size, grid, cell);

  // The exact baseline, used here only to grade the answers.
  ExactBurstStore exact(ds.universe_size);
  for (const auto& r : ds.stream.records()) {
    index.Append(r.id, r.time);
    exact.Append(r.id, r.time);
  }
  index.Finalize();
  std::printf("index: %.2f MB   baseline: %.2f MB\n",
              index.SizeBytes() / 1048576.0, exact.SizeBytes() / 1048576.0);

  const Timestamp tau = kSecondsPerDay;

  // ------------------------------------------------------------------
  PrintHeader("Q1: bursty events in the first week of October");
  // October 1 2016 = day 122 from June 1.
  const Timestamp oct_start = 122 * kSecondsPerDay;
  const double theta = 40.0 * cfg.scale / 0.01;
  std::vector<EventId> seen;
  for (int day = 0; day < 7; ++day) {
    const Timestamp t = oct_start + (day + 1) * kSecondsPerDay;
    auto bursty = index.BurstyEvents(t, theta, tau);
    auto truth = exact.BurstyEvents(t, theta, tau);
    auto pr = CompareIdSets(bursty, truth);
    std::printf("  Oct %d: %2zu bursty ids (precision %.2f, recall %.2f, "
                "%zu point queries)\n",
                day + 1, bursty.size(), pr.precision, pr.recall,
                index.LastQueryPointQueries());
    for (EventId e : bursty) {
      if (std::find(seen.begin(), seen.end(), e) == seen.end()) {
        seen.push_back(e);
      }
    }
  }
  std::printf("  distinct bursty events that week: %zu\n", seen.size());

  // ------------------------------------------------------------------
  PrintHeader("Q2: was event X bursty in the second week of September?");
  // Pick the most popular event as the protagonist.
  EventId protagonist = 0;
  size_t best = 0;
  for (EventId e = 0; e < ds.universe_size; ++e) {
    const size_t n = exact.stream(e).size();
    if (n > best) {
      best = n;
      protagonist = e;
    }
  }
  const Timestamp sep8 = (92 + 7) * kSecondsPerDay;   // Sep 8
  const Timestamp sep14 = (92 + 13) * kSecondsPerDay;  // Sep 14
  bool was_bursty = false;
  for (Timestamp t = sep8; t <= sep14; t += 6 * 3600) {
    if (index.EstimateBurstiness(protagonist, t, tau) >= theta) {
      was_bursty = true;
      break;
    }
  }
  std::printf("  event %u (%zu mentions): %s bursty in Sep 8-14\n",
              protagonist, best, was_bursty ? "WAS" : "was NOT");

  // ------------------------------------------------------------------
  PrintHeader("Q3: full burst history of the protagonist");
  ExactEventModel model(&exact.stream(protagonist));
  auto truth_intervals = exact.BurstyTimes(protagonist, theta, tau);
  std::printf("  exact bursty intervals (theta=%.0f):\n", theta);
  size_t shown = 0;
  for (const auto& iv : truth_intervals) {
    if (++shown > 8) {
      std::printf("  ... (%zu total)\n", truth_intervals.size());
      break;
    }
    std::printf("    day %.2f .. day %.2f\n",
                static_cast<double>(iv.begin) / kSecondsPerDay,
                static_cast<double>(iv.end) / kSecondsPerDay);
  }
  if (truth_intervals.empty()) std::printf("    (none)\n");
  return 0;
}
