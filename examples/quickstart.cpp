// Quickstart: build a persistent burstiness estimator over one event
// stream and ask the three historical query types of the paper.
//
//   * POINT        q(e, t, tau)   -> burstiness of e at time t
//   * BURSTY TIME  q(e, theta, tau) -> when was e bursty?
//   * BURSTY EVENT q(t, theta, tau) -> what was bursty at t?
//
// Run:  ./quickstart

#include <cstdio>

#include "core/burst_queries.h"
#include "core/cm_pbe.h"
#include "core/dyadic_index.h"
#include "core/pbe1.h"
#include "gen/scenarios.h"

using namespace bursthist;

int main() {
  // --- 1. A single event stream: "soccer at Rio 2016" ---------------
  // ~20k mentions over 31 days of August 2016 (scaled-down synthetic
  // reproduction of the paper's soccer stream).
  ScenarioConfig cfg;
  cfg.scale = 0.02;
  SingleEventStream soccer = MakeSoccer(cfg);
  std::printf("soccer stream: %zu mentions over %.1f days\n", soccer.size(),
              static_cast<double>(soccer.times().back()) / kSecondsPerDay);

  // --- 2. Build a PBE-1 (buffered optimal compression) --------------
  Pbe1Options opt;
  opt.buffer_points = 1500;  // paper default n
  opt.budget_points = 120;   // eta: keep 120 of every 1500 corners
  Pbe1 pbe(opt);
  for (Timestamp t : soccer.times()) pbe.Append(t);
  pbe.Finalize();
  std::printf("PBE-1 size: %.1f KB (exact store would be %.1f KB)\n",
              pbe.SizeBytes() / 1024.0, soccer.SizeBytes() / 1024.0);

  // --- 3. POINT query: how bursty was soccer on day 20? -------------
  const Timestamp tau = kSecondsPerDay;  // burst span: one day
  const Timestamp final_day = 20 * kSecondsPerDay;
  std::printf("\nburstiness around the final (tau = 1 day):\n");
  for (Timestamp day = 17; day <= 23; ++day) {
    const Timestamp t = day * kSecondsPerDay;
    std::printf("  day %2lld: b~ = %9.0f   (exact %lld)\n",
                static_cast<long long>(day), pbe.EstimateBurstiness(t, tau),
                static_cast<long long>(soccer.BurstinessAt(t, tau)));
  }

  // --- 4. BURSTY TIME query: when was soccer bursty? ----------------
  const double theta = 2000.0 * cfg.scale / 0.02;
  auto intervals = BurstyTimes(pbe, theta, tau);
  std::printf("\nintervals with b~ >= %.0f:\n", theta);
  for (const auto& iv : intervals) {
    std::printf("  day %.2f .. day %.2f\n",
                static_cast<double>(iv.begin) / kSecondsPerDay,
                static_cast<double>(iv.end) / kSecondsPerDay);
  }

  // --- 5. BURSTY EVENT query over a mixed stream --------------------
  // A small mixed dataset; the dyadic index finds bursty ids without
  // scanning all of them.
  ScenarioConfig mix_cfg;
  mix_cfg.scale = 0.002;
  Dataset rio = MakeOlympicRio(mix_cfg);
  Pbe1Options cell;
  cell.buffer_points = 256;
  cell.budget_points = 64;
  CmPbeOptions grid = CmPbeOptions::FromGuarantee(0.05, 0.2);
  DyadicBurstIndex<Pbe1> index(rio.universe_size, grid, cell);
  for (const auto& r : rio.stream.records()) index.Append(r.id, r.time);
  index.Finalize();

  const Timestamp query_t = final_day;
  auto bursty = index.BurstyEvents(query_t, /*theta=*/200.0 * mix_cfg.scale /
                                                0.002,
                                   tau);
  std::printf("\nbursty events at day 20 (theta scaled): %zu found using %zu "
              "point queries over %u ids\n",
              bursty.size(), index.LastQueryPointQueries(),
              rio.universe_size);
  for (EventId e : bursty) {
    std::printf("  event %4u  b~ = %.0f\n", e,
                index.EstimateBurstiness(e, query_t, tau));
  }
  return 0;
}
