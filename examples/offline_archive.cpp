// offline_archive: PBE-1 as an offline optimal compressor.
//
// "Lastly, PBE-1 can also be used as an offline algorithm to find the
//  optimal approximation for a massive archived dataset."
//  (Section III-A)
//
// The archive owner has a big historical event stream on disk. We
// compress it two ways:
//   1. budget mode — keep eta of every n corner points (the paper's
//      default), report the measured accuracy and the a-posteriori
//      guarantee 4 * max-buffer-Delta;
//   2. error-cap mode — the smallest structure whose guarantee meets a
//      stated accuracy requirement.
// Then persist the sketch, reload it, and grade the answers.

#include <cstdio>
#include <string>

#include "core/pbe1.h"
#include "eval/metrics.h"
#include "gen/scenarios.h"
#include "util/serialize.h"
#include "util/stopwatch.h"

using namespace bursthist;

namespace {

Pbe1 Compress(const SingleEventStream& archive, const Pbe1Options& opt) {
  Pbe1 pbe(opt);
  for (Timestamp t : archive.times()) pbe.Append(t);
  pbe.Finalize();
  return pbe;
}

void Grade(const char* label, const Pbe1& pbe,
           const SingleEventStream& archive) {
  const Timestamp tau = kSecondsPerDay;
  Rng qrng(7);
  auto queries =
      SampleQueryTimes(0, archive.times().back() + 2 * tau, 1000, &qrng);
  auto stats = MeasurePointError(pbe, archive, queries, tau);
  std::printf("  [%s] %7.1f KB, guarantee |err| <= %7.0f, measured mean "
              "%6.1f max %7.1f over %zu queries\n",
              label, pbe.SizeBytes() / 1024.0,
              4.0 * pbe.MaxBufferAreaError(), stats.mean_abs, stats.max_abs,
              stats.queries);
}

}  // namespace

int main() {
  // --- The archive: a month of soccer mentions ----------------------
  ScenarioConfig cfg;
  cfg.scale = 0.05;  // ~50k mentions
  SingleEventStream archive = MakeSoccer(cfg);
  std::printf("archive: %zu mentions, %.1f KB raw\n", archive.size(),
              archive.SizeBytes() / 1024.0);

  // --- 1. Budget mode: keep 8% of the corner points ------------------
  Pbe1Options budget;
  budget.buffer_points = 1500;
  budget.budget_points = 120;
  Stopwatch sw;
  Pbe1 compact = Compress(archive, budget);
  const double build_ms = sw.Millis();
  std::printf("\ncompressed (eta=120 / n=1500) in %.0f ms:\n", build_ms);
  Grade("budget  ", compact, archive);

  // --- 2. Error-cap mode: meet a stated requirement ------------------
  // Requirement: burstiness answers within +/- 2000 (the archive's
  // peak burstiness is in the tens of thousands at this scale).
  const double requirement = 2000.0;
  Pbe1Options capped;
  capped.buffer_points = 1500;
  capped.error_cap = requirement / 4.0;  // per-buffer Delta cap
  Pbe1 guaranteed = Compress(archive, capped);
  std::printf("\ncompressed with error cap %.0f (guarantee +/- %.0f):\n",
              capped.error_cap, requirement);
  Grade("err-cap ", guaranteed, archive);

  // --- 3. Persist, reload, grade again -------------------------------
  const std::string path = "/tmp/bursthist_archive.pbe1";
  BinaryWriter w;
  compact.Serialize(&w);
  if (Status st = WriteFile(path, w.bytes()); !st.ok()) {
    std::printf("write failed: %s\n", st.ToString().c_str());
    return 1;
  }
  auto bytes = ReadFile(path);
  if (!bytes.ok()) {
    std::printf("read failed: %s\n", bytes.status().ToString().c_str());
    return 1;
  }
  Pbe1 loaded;
  BinaryReader r(bytes.value());
  if (Status st = loaded.Deserialize(&r); !st.ok()) {
    std::printf("deserialize failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("\npersisted %.1f KB to %s, reloaded:\n",
              static_cast<double>(bytes.value().size()) / 1024.0,
              path.c_str());
  Grade("reloaded", loaded, archive);
  return 0;
}
