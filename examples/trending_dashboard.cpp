// trending_dashboard: a newsroom-style weekly digest over a summarized
// six-month political stream — the paper's "travel back in time"
// workflow end to end:
//
//   1. ingest the uspolitics feed once into a BurstEngine with
//      heavy-hitter tracking;
//   2. persist it in a SketchStore (the raw stream is discarded);
//   3. reload by name and render, for each week of the campaign, the
//      top bursty events (TOP-K query) alongside the all-time volume
//      leaders — bursty != frequent, as Section I stresses.

#include <algorithm>
#include <cstdio>
#include <string>

#include "core/sketch_store.h"
#include "gen/scenarios.h"

using namespace bursthist;

int main() {
  // --- 1. Ingest ------------------------------------------------------
  ScenarioConfig cfg;
  cfg.scale = 0.01;  // ~50k tweets
  Dataset ds = MakeUsPolitics(cfg);
  std::printf("ingesting %zu records over %u event ids (Jun-Nov 2016)...\n",
              ds.stream.size(), ds.universe_size);

  BurstEngineOptions<Pbe1> options;
  options.universe_size = ds.universe_size;
  options.cell.buffer_points = 512;
  options.cell.budget_points = 96;
  options.heavy_hitter_capacity = 32;
  options.prune_rule = DyadicPruneRule::kChildren;
  BurstEngine1 engine(options);
  if (Status st = engine.AppendStream(ds.stream); !st.ok()) {
    std::printf("ingest failed: %s\n", st.ToString().c_str());
    return 1;
  }
  engine.Finalize();

  // --- 2. Persist and reload ------------------------------------------
  SketchStore store("/tmp/bursthist_dashboard_store");
  if (Status st = store.Save("uspolitics-2016", engine); !st.ok()) {
    std::printf("save failed: %s\n", st.ToString().c_str());
    return 1;
  }
  auto loaded = store.LoadEngine1("uspolitics-2016");
  if (!loaded.ok()) {
    std::printf("load failed: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  const BurstEngine1& sketch = loaded.value();
  std::printf("sketch '%s': %.2f MB on disk, raw stream discarded\n\n",
              "uspolitics-2016", sketch.SizeBytes() / 1048576.0);

  // --- 3. Weekly digest -------------------------------------------------
  const Timestamp tau = kSecondsPerDay;
  std::printf("%-8s %-34s %s\n", "week", "top bursty events (id:score)",
              "peak day");
  for (int week = 0; week < 26; ++week) {
    // Query each day of the week; keep the day with the strongest top
    // event.
    double best = 0.0;
    int best_day = 0;
    std::vector<std::pair<EventId, double>> best_top;
    for (int d = 1; d <= 7; ++d) {
      const Timestamp t = (week * 7 + d) * kSecondsPerDay;
      auto top = sketch.TopKBurstyEvents(t, 3, tau);
      if (!top.empty() && top[0].second > best) {
        best = top[0].second;
        best_day = week * 7 + d;
        best_top = std::move(top);
      }
    }
    if (best < 30.0 * cfg.scale / 0.01) continue;  // quiet week
    std::string cell;
    for (const auto& [e, b] : best_top) {
      if (b <= 0) break;
      char buf[48];
      std::snprintf(buf, sizeof(buf), "%u:%.0f  ", e, b);
      cell += buf;
    }
    std::printf("%-8d %-34s day %d\n", week + 1, cell.c_str(), best_day);
  }

  // --- 4. Volume leaders vs burst leaders -------------------------------
  std::printf("\nall-time volume leaders (SpaceSaving):\n");
  for (const auto& e : sketch.HeavyHitters(5)) {
    std::printf("  event %5llu  ~%llu mentions (err <= %llu)\n",
                static_cast<unsigned long long>(e.key),
                static_cast<unsigned long long>(e.count),
                static_cast<unsigned long long>(e.error));
  }
  std::printf("\nnote how the burst columns and the volume column name "
              "different events:\nfrequent != bursty (Section I's weather "
              "report vs earthquake).\n");
  return 0;
}
