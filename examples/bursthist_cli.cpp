// bursthist_cli: file-based front end for the BurstEngine.
//
//   bursthist_cli ingest  <events.csv> <K> <out.sketch> [gamma]
//   bursthist_cli info    <sketch>
//   bursthist_cli metrics <sketch> [--json]
//   bursthist_cli point   <sketch> <event> <t> <tau>
//   bursthist_cli times   <sketch> <event> <theta> <tau>
//   bursthist_cli events  <sketch> <t> <theta> <tau>
//
// events.csv: one "event_id,timestamp" pair per line, timestamps
// non-decreasing. If `gamma` is given the engine uses PBE-2 cells with
// that band; otherwise PBE-1 with the paper defaults.
//
// The sketch file embeds the engine configuration, so query commands
// need no flags. Demo:
//   ./bursthist_cli selftest    # generates a CSV, ingests, queries

#include <chrono>
#include <cinttypes>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>

#include "core/burst_engine.h"
#include "core/sketch_store.h"
#include "fault/crashpoint.h"
#include "gen/scenarios.h"
#include "governor/resource_governor.h"
#include "obs/metrics.h"
#include "recovery/durable_engine.h"
#include "recovery/scrub.h"
#include "replication/replica_engine.h"
#include "replication/wal_shipper.h"
#include "server/ingest_server.h"
#include "shard/cluster_engine.h"
#include "shard/cluster_manifest.h"
#include "shard/cluster_replica.h"
#include "stream/csv_io.h"
#include "util/env.h"
#include "util/serialize.h"

using namespace bursthist;

namespace {

constexpr uint32_t kFileMagic = 0x42483031;  // "BH01"

// On-disk layout: file magic, cell kind (1=PBE-1, 2=PBE-2), the
// options needed to reconstruct the engine, then the engine payload.
struct FileHeader {
  uint8_t kind = 1;
  EventId universe = 1;
  uint64_t grid_depth = 2, grid_width = 55, grid_seed = 0;
  uint64_t buffer_points = 1500, budget_points = 120;  // PBE-1
  double gamma = 8.0;                                  // PBE-2
};

void WriteHeader(BinaryWriter* w, const FileHeader& h) {
  w->Put(kFileMagic);
  w->Put(h.kind);
  w->Put(h.universe);
  w->Put(h.grid_depth);
  w->Put(h.grid_width);
  w->Put(h.grid_seed);
  w->Put(h.buffer_points);
  w->Put(h.budget_points);
  w->Put(h.gamma);
}

Status ReadHeader(BinaryReader* r, FileHeader* h) {
  uint32_t magic = 0;
  BURSTHIST_RETURN_IF_ERROR(r->Get(&magic));
  if (magic != kFileMagic) return Status::Corruption("not a bursthist sketch");
  BURSTHIST_RETURN_IF_ERROR(r->Get(&h->kind));
  BURSTHIST_RETURN_IF_ERROR(r->Get(&h->universe));
  BURSTHIST_RETURN_IF_ERROR(r->Get(&h->grid_depth));
  BURSTHIST_RETURN_IF_ERROR(r->Get(&h->grid_width));
  BURSTHIST_RETURN_IF_ERROR(r->Get(&h->grid_seed));
  BURSTHIST_RETURN_IF_ERROR(r->Get(&h->buffer_points));
  BURSTHIST_RETURN_IF_ERROR(r->Get(&h->budget_points));
  BURSTHIST_RETURN_IF_ERROR(r->Get(&h->gamma));
  if (h->kind != 1 && h->kind != 2) {
    return Status::Corruption("unknown cell kind");
  }
  // The header drives the engine constructor's allocations, so its
  // shape must be plausible for the payload that follows (every grid
  // cell serializes to >= 8 bytes) before any engine is built.
  if (h->universe == 0 || h->grid_depth == 0 || h->grid_width == 0 ||
      h->buffer_points == 0 || h->budget_points == 0 ||
      !(h->gamma >= 0.0) ||  // rejects NaN and negative bands
      DyadicIndexCellCount(h->universe, h->grid_depth, h->grid_width) >
          r->remaining() / 8 + 1) {
    return Status::Corruption("implausible sketch header");
  }
  return Status::OK();
}

template <typename PbeT>
BurstEngineOptions<PbeT> EngineOptions(const FileHeader& h) {
  BurstEngineOptions<PbeT> o;
  o.universe_size = h.universe;
  o.grid.depth = static_cast<size_t>(h.grid_depth);
  o.grid.width = static_cast<size_t>(h.grid_width);
  o.grid.seed = h.grid_seed;
  if constexpr (std::is_same_v<PbeT, Pbe1>) {
    o.cell.buffer_points = static_cast<size_t>(h.buffer_points);
    o.cell.budget_points = static_cast<size_t>(h.budget_points);
  } else {
    o.cell.gamma = h.gamma;
  }
  return o;
}

int Fail(const Status& st) {
  std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
  return 1;
}

template <typename PbeT>
int IngestWith(const char* csv_path, const FileHeader& header,
               const char* out_path) {
  BurstEngine<PbeT> engine(EngineOptions<PbeT>(header));
  auto stream = ReadEventStreamCsv(csv_path);
  if (!stream.ok()) return Fail(stream.status());
  // Record-at-a-time so the periodic stats line (stderr, ~1/s) can
  // report ingest progress; a final line prints unconditionally.
  obs::PeriodicStats stats;
  for (const auto& r : stream.value().records()) {
    if (Status st = engine.Append(r.id, r.time); !st.ok()) return Fail(st);
    stats.Tick();
  }
  engine.Finalize();
  engine.PublishMetrics();
  stats.Final();

  BinaryWriter w;
  WriteHeader(&w, header);
  engine.Serialize(&w);
  if (Status st = WriteFile(out_path, w.bytes()); !st.ok()) return Fail(st);
  std::printf("ingested %zu rows, wrote %s (%.1f KB, sketch %.1f KB)\n",
              stream.value().size(), out_path, w.bytes().size() / 1024.0,
              engine.SizeBytes() / 1024.0);
  return 0;
}

// Loads the sketch and dispatches `fn(engine)` on the concrete type.
template <typename Fn>
int WithEngine(const char* path, Fn&& fn) {
  auto bytes = ReadFile(path);
  if (!bytes.ok()) return Fail(bytes.status());
  BinaryReader r(bytes.value());
  FileHeader h;
  if (Status st = ReadHeader(&r, &h); !st.ok()) return Fail(st);
  if (h.kind == 1) {
    BurstEngine1 engine(EngineOptions<Pbe1>(h));
    if (Status st = engine.Deserialize(&r); !st.ok()) return Fail(st);
    return fn(engine, h);
  }
  BurstEngine2 engine(EngineOptions<Pbe2>(h));
  if (Status st = engine.Deserialize(&r); !st.ok()) return Fail(st);
  return fn(engine, h);
}

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  bursthist_cli serve  <dir> <K> [--port N] [--gamma g]\n"
      "                       [--lateness L] [--budget-mb M]\n"
      "                       [--repl-port N] [--follow host:port]\n"
      "                       [--shards N]\n"
      "  bursthist_cli ingest <events.csv> <K> <out.sketch> [gamma]\n"
      "  bursthist_cli info   <sketch>\n"
      "  bursthist_cli metrics <sketch> [--json]\n"
      "  bursthist_cli point  <sketch> <event> <t> <tau>\n"
      "  bursthist_cli times  <sketch> <event> <theta> <tau>\n"
      "  bursthist_cli events <sketch> <t> <theta> <tau>\n"
      "  bursthist_cli scrub  <dir> [--no-quarantine]\n"
      "  bursthist_cli store-list   <dir>\n"
      "  bursthist_cli store-save   <dir> <name> <events.csv> <K> [gamma]\n"
      "  bursthist_cli store-topk   <dir> <name> <t> <k> <tau>\n"
      "  bursthist_cli store-remove <dir> <name>\n"
      "  bursthist_cli selftest\n");
  return 2;
}

// store-save: ingest a CSV straight into a named catalog entry.
template <typename PbeT>
int StoreSave(SketchStore* store, const char* name, const char* csv_path,
              const BurstEngineOptions<PbeT>& options) {
  BurstEngine<PbeT> engine(options);
  auto stream = ReadEventStreamCsv(csv_path);
  if (!stream.ok()) return Fail(stream.status());
  if (Status st = engine.AppendStream(stream.value()); !st.ok()) {
    return Fail(st);
  }
  engine.Finalize();
  if (Status st = store->Save(name, engine); !st.ok()) return Fail(st);
  std::printf("saved '%s' (%zu rows, %.1f KB)\n", name,
              stream.value().size(), engine.SizeBytes() / 1024.0);
  return 0;
}

// serve: durable ingest + snapshot-served queries over TCP, until
// SIGINT/SIGTERM. Engine shape matches the FileHeader defaults, so
// replies agree with sketches the `ingest` command writes from the
// same stream.
volatile std::sig_atomic_t g_stop = 0;
void HandleStop(int) { g_stop = 1; }

struct ServeConfig {
  const char* dir = nullptr;
  FileHeader header;
  uint16_t port = 0;
  Timestamp lateness = 0;
  size_t budget_mb = 0;
  uint16_t repl_port = 0;      ///< non-zero: ship the WAL to followers.
  std::string follow_host;     ///< non-empty: run as a follower of ...
  uint16_t follow_port = 0;    ///< ... this leader.
  size_t shards = 1;           ///< >1: sharded cluster engine.
};

// Shared tail of every serve mode: TCP front-end over `engine`, the
// mode's extras (WAL shippers, apply threads) started after it, then
// the signal loop and a reverse-order graceful teardown ending in a
// final checkpoint.
template <typename EngineT, typename StartExtras, typename StopExtras>
int RunServeLoop(EngineT* engine,
                 const server::BurstServiceOptions& service_options,
                 uint16_t port, StartExtras&& start_extras,
                 StopExtras&& stop_extras) {
  server::IngestServer<EngineT> server(engine, service_options);
  server::TcpServerOptions tcp;
  tcp.port = port;
  if (Status st = server.Start(tcp); !st.ok()) return Fail(st);
  std::printf("listening on %s:%u\n", tcp.host.c_str(), server.port());
  if (Status st = start_extras(); !st.ok()) {
    server.Stop();
    stop_extras();
    return Fail(st);
  }
  std::fflush(stdout);

  std::signal(SIGINT, HandleStop);
  std::signal(SIGTERM, HandleStop);
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  // Graceful shutdown: refuse new connections, give in-flight
  // requests a grace period, then tear down and leave a final
  // checkpoint so the next start replays (almost) nothing.
  server.StopAccepting();
  server.Drain(2000);
  server.Stop();
  stop_extras();
  // The final checkpoint is an optimization, not a durability
  // barrier: every acknowledged record is already in the WAL, so a
  // crash (or injected fault) anywhere inside Checkpoint() leaves a
  // directory the next start recovers by WAL replay. But a FAILED
  // checkpoint is still a failed shutdown step the operator must see
  // — exit nonzero instead of burying it in a log line.
  if (Status st = engine->Checkpoint(); !st.ok()) {
    std::fprintf(stderr,
                 "final checkpoint failed (WAL replay will recover on next "
                 "start): %s\n",
                 st.message().c_str());
    return 1;
  }
  std::printf("stopped\n");
  return 0;
}

template <typename PbeT>
int ServeWith(const ServeConfig& cfg) {
  obs::RegisterStandardMetrics();
  BurstEngineOptions<PbeT> options = EngineOptions<PbeT>(cfg.header);
  options.max_lateness = cfg.lateness;

  // Leader mode owns the durable engine directly; follower mode owns
  // it through a ReplicaEngine whose apply thread shares the serving
  // layer's write mutex.
  std::unique_ptr<DurableBurstEngine<PbeT>> durable;
  std::unique_ptr<repl::ReplicaEngine<PbeT>> replica;
  std::mutex leader_mu;
  server::BurstServiceOptions service_options;
  if (!cfg.follow_host.empty()) {
    repl::ReplicaOptions ropts;
    ropts.leader_host = cfg.follow_host;
    ropts.leader_port = cfg.follow_port;
    auto r = repl::ReplicaEngine<PbeT>::Open(Env::Default(), cfg.dir, options,
                                             DurabilityOptions(), ropts);
    if (!r.ok()) return Fail(r.status());
    replica = std::move(r).value();
    auto* rp = replica.get();
    service_options.replica.enabled = true;
    service_options.replica.write_mu = rp->write_mu();
    service_options.replica.is_follower = [rp] { return rp->follower(); };
    service_options.replica.lag = [rp] { return rp->lag(); };
    service_options.replica.applied = [rp] { return rp->applied_records(); };
    service_options.replica.promote = [rp] { return rp->Promote(); };
  } else {
    auto d = DurableBurstEngine<PbeT>::Open(Env::Default(), cfg.dir, options);
    if (!d.ok()) return Fail(d.status());
    durable = std::move(d).value();
    // Even without a replica, the shipper's state callback must see
    // consistent WAL positions — share one mutex with the service.
    service_options.replica.write_mu = &leader_mu;
  }
  DurableBurstEngine<PbeT>* owned = durable ? durable.get()
                                            : replica->durable();

  ResourceGovernor governor(
      ResourceBudget{cfg.budget_mb << 19, cfg.budget_mb << 20});
  if (cfg.budget_mb > 0) {
    auto* engine = &owned->engine();
    governor.RegisterComponent(
        "engine", [engine] { return engine->MemoryUsage(); },
        [engine](double factor) { engine->Degrade(factor); });
    service_options.governor = &governor;
  }

  repl::WalShipper shipper;
  auto start_extras = [&]() -> Status {
    if (cfg.repl_port != 0) {
      repl::WalShipperOptions sopts;
      sopts.port = cfg.repl_port;
      std::mutex* state_mu = service_options.replica.write_mu;
      auto state = [owned, state_mu] {
        std::lock_guard<std::mutex> lock(*state_mu);
        return repl::LeaderStatus{owned->wal_position(),
                                  owned->engine().Watermark()};
      };
      BURSTHIST_RETURN_IF_ERROR(
          shipper.Start(Env::Default(), cfg.dir, sopts, state));
      std::printf("replicating on %s:%u\n", sopts.host.c_str(),
                  shipper.port());
    }
    if (replica != nullptr) {
      BURSTHIST_RETURN_IF_ERROR(replica->Start());
      std::printf("following %s:%u\n", cfg.follow_host.c_str(),
                  cfg.follow_port);
    }
    return Status::OK();
  };
  auto stop_extras = [&] {
    shipper.Stop();
    if (replica != nullptr) replica->Stop();
  };
  return RunServeLoop(owned, service_options, cfg.port, start_extras,
                      stop_extras);
}

// serve --shards N: a ClusterEngine (leader) or ClusterReplica
// (follower) behind the same front-end. Leader mode ships shard i's
// WAL on repl_port + i, the port convention ClusterReplica derives
// its per-shard leader ports from.
template <typename PbeT>
int ServeCluster(const ServeConfig& cfg) {
  obs::RegisterStandardMetrics();
  BurstEngineOptions<PbeT> options = EngineOptions<PbeT>(cfg.header);
  options.max_lateness = cfg.lateness;
  shard::ClusterOptions cluster_options;
  cluster_options.shards = cfg.shards;

  ResourceGovernor governor(
      ResourceBudget{cfg.budget_mb << 19, cfg.budget_mb << 20});
  server::BurstServiceOptions service_options;

  if (!cfg.follow_host.empty()) {
    if (cfg.repl_port != 0) {
      return Fail(Status::InvalidArgument(
          "--repl-port with --follow is not supported for a sharded "
          "follower (re-shipping would need per-shard chains)"));
    }
    repl::ReplicaOptions ropts;
    ropts.leader_host = cfg.follow_host;
    ropts.leader_port = cfg.follow_port;
    auto r = shard::ClusterReplica<PbeT>::Open(Env::Default(), cfg.dir,
                                               options, DurabilityOptions(),
                                               ropts, cluster_options);
    if (!r.ok()) return Fail(r.status());
    auto replica = std::move(r).value();
    auto* rp = replica.get();
    service_options.replica.enabled = true;
    service_options.replica.write_mu = rp->write_mu();
    service_options.replica.is_follower = [rp] { return rp->follower(); };
    service_options.replica.lag = [rp] { return rp->lag(); };
    service_options.replica.applied = [rp] { return rp->applied_records(); };
    service_options.replica.promote = [rp] { return rp->Promote(); };
    // No governor on a cluster follower: Enforce() would race the
    // apply threads (the cluster-level write mutex does not exclude
    // them), and a follower's ingest is the leader's problem anyway.
    auto start_extras = [&]() -> Status {
      BURSTHIST_RETURN_IF_ERROR(rp->Start());
      std::printf("following %s:%u (%zu shards)\n", cfg.follow_host.c_str(),
                  cfg.follow_port, cfg.shards);
      return Status::OK();
    };
    auto stop_extras = [&] { rp->Stop(); };
    return RunServeLoop(rp, service_options, cfg.port, start_extras,
                        stop_extras);
  }

  auto c = shard::ClusterEngine<PbeT>::Open(Env::Default(), cfg.dir, options,
                                            cluster_options);
  if (!c.ok()) return Fail(c.status());
  auto cluster = std::move(c).value();
  if (cfg.budget_mb > 0) {
    cluster->RegisterComponents(&governor);
    service_options.governor = &governor;
  }
  // The shipper state callbacks share the service's write mutex: the
  // per-shard ingest workers only touch their WALs while a dispatch
  // holds it (the dispatcher blocks until every sub-batch completes),
  // so positions read under the mutex are always between batches.
  std::mutex leader_mu;
  service_options.replica.write_mu = &leader_mu;

  std::vector<std::unique_ptr<repl::WalShipper>> shippers;
  auto start_extras = [&]() -> Status {
    if (cfg.repl_port == 0) return Status::OK();
    for (size_t i = 0; i < cfg.shards; ++i) {
      repl::WalShipperOptions sopts;
      sopts.port = static_cast<uint16_t>(cfg.repl_port + i);
      auto* sh = cluster->shard(i);
      auto state = [sh, &leader_mu] {
        std::lock_guard<std::mutex> lock(leader_mu);
        return repl::LeaderStatus{sh->wal_position(),
                                  sh->engine().Watermark()};
      };
      shippers.push_back(std::make_unique<repl::WalShipper>());
      BURSTHIST_RETURN_IF_ERROR(shippers.back()->Start(
          Env::Default(), std::string(cfg.dir) + "/" + shard::ShardDirName(i),
          sopts, state));
      std::printf("replicating %s on %s:%u\n", shard::ShardDirName(i).c_str(),
                  sopts.host.c_str(), shippers.back()->port());
    }
    return Status::OK();
  };
  auto stop_extras = [&] {
    for (auto& sh : shippers) sh->Stop();
  };
  return RunServeLoop(cluster.get(), service_options, cfg.port, start_extras,
                      stop_extras);
}

int Serve(int argc, char** argv) {
  if (argc < 4) return Usage();
  ServeConfig cfg;
  cfg.dir = argv[2];
  cfg.header.universe =
      static_cast<EventId>(std::strtoul(argv[3], nullptr, 10));
  if (cfg.header.universe == 0) return Usage();
  for (int i = 4; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    if (flag == "--port") {
      cfg.port = static_cast<uint16_t>(std::strtoul(argv[i + 1], nullptr, 10));
    } else if (flag == "--gamma") {
      cfg.header.kind = 2;
      cfg.header.gamma = std::atof(argv[i + 1]);
    } else if (flag == "--lateness") {
      cfg.lateness = std::strtoll(argv[i + 1], nullptr, 10);
    } else if (flag == "--budget-mb") {
      cfg.budget_mb = std::strtoul(argv[i + 1], nullptr, 10);
    } else if (flag == "--repl-port") {
      cfg.repl_port =
          static_cast<uint16_t>(std::strtoul(argv[i + 1], nullptr, 10));
      if (cfg.repl_port == 0) return Usage();
    } else if (flag == "--follow") {
      const std::string target = argv[i + 1];
      const size_t colon = target.rfind(':');
      if (colon == std::string::npos) return Usage();
      cfg.follow_host = target.substr(0, colon);
      cfg.follow_port = static_cast<uint16_t>(
          std::strtoul(target.c_str() + colon + 1, nullptr, 10));
      if (cfg.follow_host.empty() || cfg.follow_port == 0) return Usage();
    } else if (flag == "--shards") {
      cfg.shards = std::strtoul(argv[i + 1], nullptr, 10);
      if (cfg.shards == 0) return Usage();
    } else {
      return Usage();
    }
  }
  if (cfg.shards > 1) {
    return cfg.header.kind == 1 ? ServeCluster<Pbe1>(cfg)
                                : ServeCluster<Pbe2>(cfg);
  }
  return cfg.header.kind == 1 ? ServeWith<Pbe1>(cfg) : ServeWith<Pbe2>(cfg);
}

int SelfTest() {
  // Generate a small soccer CSV, ingest it, and run one of each query.
  ScenarioConfig cfg;
  cfg.scale = 0.005;
  SingleEventStream soccer = MakeSoccer(cfg);
  const char* csv = "/tmp/bursthist_cli_demo.csv";
  std::FILE* f = std::fopen(csv, "w");
  if (f == nullptr) return Fail(Status::NotFound(csv));
  for (Timestamp t : soccer.times()) {
    std::fprintf(f, "0,%" PRId64 "\n", t);
  }
  std::fclose(f);

  FileHeader h;
  h.kind = 1;
  h.universe = 4;
  const char* sketch = "/tmp/bursthist_cli_demo.sketch";
  if (int rc = IngestWith<Pbe1>(csv, h, sketch); rc != 0) return rc;
  return WithEngine(sketch, [](auto& engine, const FileHeader&) {
    const Timestamp tau = kSecondsPerDay;
    std::printf("point(0, day20, 1d) = %.0f\n",
                engine.PointQuery(0, 20 * kSecondsPerDay, tau));
    auto iv = engine.BurstyTimeQuery(0, 200.0, tau);
    std::printf("bursty intervals at theta=200: %zu\n", iv.size());
    auto ev = engine.BurstyEventQuery(20 * kSecondsPerDay, 200.0, tau);
    std::printf("bursty events at day 20: %zu\n", ev.size());
    return 0;
  });
}

}  // namespace

int main(int argc, char** argv) {
#ifndef BURSTHIST_NO_FAULT
  // Honor BURSTHIST_CRASHPOINTS so the torture harness can schedule
  // faults inside a real served process. Compiles out (along with
  // every crashpoint) under -DBURSTHIST_NO_FAULT=ON.
  if (Status st = fault::FaultScheduler::Global().LoadFromEnv(); !st.ok()) {
    std::fprintf(stderr, "bad BURSTHIST_CRASHPOINTS: %s\n",
                 st.message().c_str());
    return 2;
  }
#endif
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];

  if (cmd == "selftest") return SelfTest();
  if (cmd == "serve") return Serve(argc, argv);

  if (cmd == "ingest") {
    if (argc != 5 && argc != 6) return Usage();
    FileHeader h;
    h.universe = static_cast<EventId>(std::strtoul(argv[3], nullptr, 10));
    if (h.universe == 0) return Usage();
    if (argc == 6) {
      h.kind = 2;
      h.gamma = std::atof(argv[5]);
    }
    return h.kind == 1 ? IngestWith<Pbe1>(argv[2], h, argv[4])
                       : IngestWith<Pbe2>(argv[2], h, argv[4]);
  }

  if (cmd == "info" && argc == 3) {
    return WithEngine(argv[2], [](auto& engine, const FileHeader& h) {
      std::printf("kind: CM-PBE-%d  K=%u  grid d=%llu w=%llu\n", h.kind,
                  h.universe, static_cast<unsigned long long>(h.grid_depth),
                  static_cast<unsigned long long>(h.grid_width));
      std::printf("records: %llu   sketch size: %.1f KB   resident: %.1f KB\n",
                  static_cast<unsigned long long>(engine.TotalCount()),
                  engine.SizeBytes() / 1024.0, engine.MemoryUsage() / 1024.0);
      const EffectiveErrorBound b = engine.EffectivePointBound();
      std::printf(
          "effective bound: |b~ - b| <= %.3f  (eps=%.4f delta=%.4f "
          "cell=%.3f)\n",
          b.point_bound, b.epsilon, b.delta, b.cell_error);
      return 0;
    });
  }

  if (cmd == "metrics" && (argc == 3 || argc == 4)) {
    const bool json = argc == 4 && std::strcmp(argv[3], "--json") == 0;
    if (argc == 4 && !json) return Usage();
    // Materialize the full declared set first so the exposition shows
    // every metric (zeros included), then load the sketch and touch
    // each query path once so the latency histograms carry samples.
    obs::RegisterStandardMetrics();
    return WithEngine(argv[2], [&](auto& engine, const FileHeader&) {
      const Timestamp tau = kSecondsPerDay;
      (void)engine.PointQuery(0, 20 * kSecondsPerDay, tau);
      (void)engine.BurstyTimeQuery(0, 1.0, tau);
      (void)engine.BurstyEventQuery(20 * kSecondsPerDay, 1.0, tau);
      engine.PublishMetrics();
      std::string out;
      if (json) {
        obs::MetricsRegistry::Global().WriteJson(&out);
        out += "\n";
      } else {
        obs::MetricsRegistry::Global().WritePrometheus(&out);
      }
      std::fputs(out.c_str(), stdout);
      return 0;
    });
  }

  if (cmd == "point" && argc == 6) {
    const EventId e = static_cast<EventId>(std::strtoul(argv[3], nullptr, 10));
    const Timestamp t = std::strtoll(argv[4], nullptr, 10);
    const Timestamp tau = std::strtoll(argv[5], nullptr, 10);
    return WithEngine(argv[2], [&](auto& engine, const FileHeader&) {
      std::printf("%.2f\n", engine.PointQuery(e, t, tau));
      return 0;
    });
  }

  if (cmd == "times" && argc == 6) {
    const EventId e = static_cast<EventId>(std::strtoul(argv[3], nullptr, 10));
    const double theta = std::atof(argv[4]);
    const Timestamp tau = std::strtoll(argv[5], nullptr, 10);
    return WithEngine(argv[2], [&](auto& engine, const FileHeader&) {
      for (const auto& iv : engine.BurstyTimeQuery(e, theta, tau)) {
        std::printf("%" PRId64 " %" PRId64 "\n", iv.begin, iv.end);
      }
      return 0;
    });
  }

  if (cmd == "scrub" && (argc == 3 || argc == 4)) {
    ScrubOptions opts;
    if (argc == 4) {
      if (std::string(argv[3]) != "--no-quarantine") return Usage();
      opts.quarantine = false;
    }
    Env* env = Env::Default();
    const std::string dir = argv[2];
    Result<ScrubReport> report = Status::NotFound("unscanned");
    // A cluster directory is a manifest plus per-shard durable dirs:
    // scrub each shard and merge, prefixing issue paths, so operators
    // get the same one-verb check sharded or not.
    auto manifest = shard::ReadClusterManifest(env, dir);
    if (manifest.ok()) {
      ScrubReport merged;
      std::printf("cluster directory: %u shard(s)\n",
                  manifest.value().shard_count);
      for (uint32_t i = 0; i < manifest.value().shard_count; ++i) {
        const std::string name = shard::ShardDirName(i);
        auto part = ScrubDurableDir(env, dir + "/" + name, opts);
        if (!part.ok()) return Fail(part.status());
        const ScrubReport& p = part.value();
        merged.wal_segments_checked += p.wal_segments_checked;
        merged.wal_records_checked += p.wal_records_checked;
        merged.snapshots_checked += p.snapshots_checked;
        merged.corrupt_files += p.corrupt_files;
        merged.quarantined_now += p.quarantined_now;
        merged.quarantined_present += p.quarantined_present;
        merged.tail_torn = merged.tail_torn || p.tail_torn;
        for (ScrubIssue issue : p.issues) {
          issue.file = name + "/" + issue.file;
          merged.issues.push_back(std::move(issue));
        }
      }
      report = std::move(merged);
    } else if (manifest.status().code() == StatusCode::kNotFound) {
      report = ScrubDurableDir(env, dir, opts);
    } else {
      return Fail(manifest.status());  // damaged manifest
    }
    if (!report.ok()) return Fail(report.status());
    const ScrubReport& r = report.value();
    std::printf(
        "scrubbed %llu WAL segments (%llu records), %llu snapshots\n",
        static_cast<unsigned long long>(r.wal_segments_checked),
        static_cast<unsigned long long>(r.wal_records_checked),
        static_cast<unsigned long long>(r.snapshots_checked));
    if (r.tail_torn) {
      std::printf("newest segment ends in a torn tail (crash remnant; "
                  "recovery handles it)\n");
    }
    for (const auto& issue : r.issues) {
      std::printf("CORRUPT %s%s: %s\n", issue.file.c_str(),
                  issue.quarantined ? " (quarantined)" : "",
                  issue.detail.c_str());
    }
    if (r.quarantined_present > 0) {
      std::printf("%llu quarantined file(s) in directory\n",
                  static_cast<unsigned long long>(r.quarantined_present));
    }
    std::printf(r.clean() ? "clean\n" : "corruption found\n");
    return r.clean() ? 0 : 3;
  }

  if (cmd == "store-list" && argc == 3) {
    SketchStore store(argv[2]);
    auto list = store.List();
    if (!list.ok()) return Fail(list.status());
    for (const auto& e : list.value()) {
      std::printf("%-32s CM-PBE-%d\n", e.name.c_str(), e.kind);
    }
    if (list.value().empty()) std::printf("(empty store)\n");
    return 0;
  }

  if (cmd == "store-save" && (argc == 6 || argc == 7)) {
    SketchStore store(argv[2]);
    const EventId k =
        static_cast<EventId>(std::strtoul(argv[5], nullptr, 10));
    if (k == 0) return Usage();
    if (argc == 7) {
      BurstEngineOptions<Pbe2> o;
      o.universe_size = k;
      o.cell.gamma = std::atof(argv[6]);
      return StoreSave(&store, argv[3], argv[4], o);
    }
    BurstEngineOptions<Pbe1> o;
    o.universe_size = k;
    return StoreSave(&store, argv[3], argv[4], o);
  }

  if (cmd == "store-topk" && argc == 7) {
    SketchStore store(argv[2]);
    const Timestamp t = std::strtoll(argv[4], nullptr, 10);
    const size_t k = std::strtoul(argv[5], nullptr, 10);
    const Timestamp tau = std::strtoll(argv[6], nullptr, 10);
    auto run = [&](const auto& engine) {
      for (const auto& [e, b] : engine.TopKBurstyEvents(t, k, tau)) {
        std::printf("%u %.2f\n", e, b);
      }
      return 0;
    };
    auto e1 = store.LoadEngine1(argv[3]);
    if (e1.ok()) return run(e1.value());
    auto e2 = store.LoadEngine2(argv[3]);
    if (e2.ok()) return run(e2.value());
    return Fail(e2.status());
  }

  if (cmd == "store-remove" && argc == 4) {
    SketchStore store(argv[2]);
    if (Status st = store.Remove(argv[3]); !st.ok()) return Fail(st);
    std::printf("removed '%s'\n", argv[3]);
    return 0;
  }

  if (cmd == "events" && argc == 6) {
    const Timestamp t = std::strtoll(argv[3], nullptr, 10);
    const double theta = std::atof(argv[4]);
    const Timestamp tau = std::strtoll(argv[5], nullptr, 10);
    return WithEngine(argv[2], [&](auto& engine, const FileHeader&) {
      for (EventId e : engine.BurstyEventQuery(t, theta, tau)) {
        std::printf("%u %.2f\n", e, engine.PointQuery(e, t, tau));
      }
      return 0;
    });
  }

  return Usage();
}
